#pragma once

/// @file formats.hpp
/// CUSP-style host sparse formats — COO, CSR, CSC, ELL — with conversions
/// and per-format SpMV. This substrate backs the format ablation (Abl. A):
/// the paper's CUDA backend standardizes on CSR, and this module shows why
/// (ELL wins on regular banded matrices, collapses on power-law degree
/// distributions; COO needs atomics or sorting; CSC serves pull-style vxm).

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace sparse {

using Index = std::uint64_t;

/// Coordinate format: parallel (row, col, value) arrays, row-major sorted.
template <typename T>
struct Coo {
  Index nrows = 0;
  Index ncols = 0;
  std::vector<Index> row;
  std::vector<Index> col;
  std::vector<T> val;

  Index nnz() const { return static_cast<Index>(val.size()); }
};

/// Compressed sparse row.
template <typename T>
struct Csr {
  Index nrows = 0;
  Index ncols = 0;
  std::vector<Index> row_offsets;  // size nrows + 1
  std::vector<Index> col_indices;
  std::vector<T> values;

  Index nnz() const { return static_cast<Index>(values.size()); }
};

/// Compressed sparse column.
template <typename T>
struct Csc {
  Index nrows = 0;
  Index ncols = 0;
  std::vector<Index> col_offsets;  // size ncols + 1
  std::vector<Index> row_indices;
  std::vector<T> values;

  Index nnz() const { return static_cast<Index>(values.size()); }
};

/// ELLPACK: fixed width = max row degree, padded with an invalid column.
/// Column-major storage (coalesced on a real GPU).
template <typename T>
struct Ell {
  static constexpr Index kPad = std::numeric_limits<Index>::max();

  Index nrows = 0;
  Index ncols = 0;
  Index width = 0;                 // entries per row (padded)
  std::vector<Index> col_indices;  // width * nrows, column-major
  std::vector<T> values;

  Index nnz() const {
    Index n = 0;
    for (Index c : col_indices)
      if (c != kPad) ++n;
    return n;
  }
  /// Padding overhead factor: stored slots / useful entries.
  double fill_ratio() const {
    const Index useful = nnz();
    if (useful == 0) return 1.0;
    return static_cast<double>(width * nrows) / static_cast<double>(useful);
  }
};

/// HYB = ELL slab for the regular part + COO tail for the long rows — the
/// CUSP default format. `width` is chosen so the ELL part holds rows up to
/// roughly the average degree and the skewed tail spills to COO, bounding
/// the padding blow-up that kills pure ELL on power-law graphs.
template <typename T>
struct Hyb {
  Ell<T> ell;
  Coo<T> tail;

  Index nrows() const { return ell.nrows; }
  Index ncols() const { return ell.ncols; }
  Index nnz() const { return ell.nnz() + tail.nnz(); }
};

// --------------------------------------------------------------------------
// Construction & conversion
// --------------------------------------------------------------------------

/// Sort + combine duplicates (by addition) into canonical row-major COO.
template <typename T>
Coo<T> canonicalize(Coo<T> a);

template <typename T>
Csr<T> coo_to_csr(const Coo<T>& a);

template <typename T>
Coo<T> csr_to_coo(const Csr<T>& a);

template <typename T>
Csc<T> csr_to_csc(const Csr<T>& a);

template <typename T>
Csr<T> csc_to_csr(const Csc<T>& a);

template <typename T>
Ell<T> csr_to_ell(const Csr<T>& a);

template <typename T>
Csr<T> ell_to_csr(const Ell<T>& a);

/// @param width ELL slab width; 0 = auto (ceil of the mean degree).
template <typename T>
Hyb<T> csr_to_hyb(const Csr<T>& a, Index width = 0);

template <typename T>
Csr<T> hyb_to_csr(const Hyb<T>& a);

// --------------------------------------------------------------------------
// SpMV: y = A * x  (host reference kernels; the device-modeled variants live
// in sparse/spmv_device.hpp)
// --------------------------------------------------------------------------

template <typename T>
std::vector<T> spmv(const Coo<T>& a, const std::vector<T>& x);
template <typename T>
std::vector<T> spmv(const Csr<T>& a, const std::vector<T>& x);
template <typename T>
std::vector<T> spmv(const Csc<T>& a, const std::vector<T>& x);
template <typename T>
std::vector<T> spmv(const Ell<T>& a, const std::vector<T>& x);
template <typename T>
std::vector<T> spmv(const Hyb<T>& a, const std::vector<T>& x);

// ===========================================================================
// Implementation
// ===========================================================================

namespace detail {

inline void require(bool ok, const char* msg) {
  if (!ok) throw std::invalid_argument(msg);
}

}  // namespace detail

template <typename T>
Coo<T> canonicalize(Coo<T> a) {
  detail::require(a.row.size() == a.val.size() &&
                      a.col.size() == a.val.size(),
                  "coo: ragged arrays");
  std::vector<Index> perm(a.nnz());
  for (Index i = 0; i < a.nnz(); ++i) perm[i] = i;
  std::sort(perm.begin(), perm.end(), [&](Index p, Index q) {
    if (a.row[p] != a.row[q]) return a.row[p] < a.row[q];
    return a.col[p] < a.col[q];
  });
  Coo<T> out;
  out.nrows = a.nrows;
  out.ncols = a.ncols;
  for (Index k = 0; k < a.nnz(); ++k) {
    const Index p = perm[k];
    detail::require(a.row[p] < a.nrows && a.col[p] < a.ncols,
                    "coo: entry out of bounds");
    if (!out.row.empty() && out.row.back() == a.row[p] &&
        out.col.back() == a.col[p]) {
      out.val.back() += a.val[p];
    } else {
      out.row.push_back(a.row[p]);
      out.col.push_back(a.col[p]);
      out.val.push_back(a.val[p]);
    }
  }
  return out;
}

template <typename T>
Csr<T> coo_to_csr(const Coo<T>& a) {
  Csr<T> out;
  out.nrows = a.nrows;
  out.ncols = a.ncols;
  out.row_offsets.assign(a.nrows + 1, 0);
  for (Index r : a.row) ++out.row_offsets[r + 1];
  for (Index i = 0; i < a.nrows; ++i)
    out.row_offsets[i + 1] += out.row_offsets[i];
  out.col_indices = a.col;
  out.values = a.val;
  return out;
}

template <typename T>
Coo<T> csr_to_coo(const Csr<T>& a) {
  Coo<T> out;
  out.nrows = a.nrows;
  out.ncols = a.ncols;
  out.col = a.col_indices;
  out.val = a.values;
  out.row.reserve(a.nnz());
  for (Index i = 0; i < a.nrows; ++i)
    for (Index k = a.row_offsets[i]; k < a.row_offsets[i + 1]; ++k)
      out.row.push_back(i);
  return out;
}

template <typename T>
Csc<T> csr_to_csc(const Csr<T>& a) {
  Csc<T> out;
  out.nrows = a.nrows;
  out.ncols = a.ncols;
  out.col_offsets.assign(a.ncols + 1, 0);
  for (Index c : a.col_indices) ++out.col_offsets[c + 1];
  for (Index j = 0; j < a.ncols; ++j)
    out.col_offsets[j + 1] += out.col_offsets[j];
  out.row_indices.resize(a.nnz());
  out.values.resize(a.nnz());
  std::vector<Index> cursor(out.col_offsets.begin(),
                            out.col_offsets.end() - 1);
  for (Index i = 0; i < a.nrows; ++i) {
    for (Index k = a.row_offsets[i]; k < a.row_offsets[i + 1]; ++k) {
      const Index j = a.col_indices[k];
      out.row_indices[cursor[j]] = i;
      out.values[cursor[j]] = a.values[k];
      ++cursor[j];
    }
  }
  return out;
}

template <typename T>
Csr<T> csc_to_csr(const Csc<T>& a) {
  // Transpose twice via the same bucket pass.
  Csr<T> out;
  out.nrows = a.nrows;
  out.ncols = a.ncols;
  out.row_offsets.assign(a.nrows + 1, 0);
  for (Index r : a.row_indices) ++out.row_offsets[r + 1];
  for (Index i = 0; i < a.nrows; ++i)
    out.row_offsets[i + 1] += out.row_offsets[i];
  out.col_indices.resize(a.nnz());
  out.values.resize(a.nnz());
  std::vector<Index> cursor(out.row_offsets.begin(),
                            out.row_offsets.end() - 1);
  for (Index j = 0; j < a.ncols; ++j) {
    for (Index k = a.col_offsets[j]; k < a.col_offsets[j + 1]; ++k) {
      const Index i = a.row_indices[k];
      out.col_indices[cursor[i]] = j;
      out.values[cursor[i]] = a.values[k];
      ++cursor[i];
    }
  }
  return out;
}

template <typename T>
Ell<T> csr_to_ell(const Csr<T>& a) {
  Ell<T> out;
  out.nrows = a.nrows;
  out.ncols = a.ncols;
  for (Index i = 0; i < a.nrows; ++i)
    out.width = std::max<Index>(out.width,
                                a.row_offsets[i + 1] - a.row_offsets[i]);
  out.col_indices.assign(out.width * a.nrows, Ell<T>::kPad);
  out.values.assign(out.width * a.nrows, T{});
  for (Index i = 0; i < a.nrows; ++i) {
    Index slot = 0;
    for (Index k = a.row_offsets[i]; k < a.row_offsets[i + 1]; ++k, ++slot) {
      // Column-major: slot-th entry of row i lives at slot * nrows + i.
      out.col_indices[slot * a.nrows + i] = a.col_indices[k];
      out.values[slot * a.nrows + i] = a.values[k];
    }
  }
  return out;
}

template <typename T>
Csr<T> ell_to_csr(const Ell<T>& a) {
  Coo<T> coo;
  coo.nrows = a.nrows;
  coo.ncols = a.ncols;
  for (Index i = 0; i < a.nrows; ++i) {
    for (Index s = 0; s < a.width; ++s) {
      const Index c = a.col_indices[s * a.nrows + i];
      if (c == Ell<T>::kPad) continue;
      coo.row.push_back(i);
      coo.col.push_back(c);
      coo.val.push_back(a.values[s * a.nrows + i]);
    }
  }
  return coo_to_csr(canonicalize(std::move(coo)));
}

template <typename T>
Hyb<T> csr_to_hyb(const Csr<T>& a, Index width) {
  if (width == 0) {
    width = a.nrows > 0
                ? (a.nnz() + a.nrows - 1) / a.nrows  // ceil(mean degree)
                : 0;
    if (width == 0) width = 1;
  }
  Hyb<T> out;
  out.ell.nrows = a.nrows;
  out.ell.ncols = a.ncols;
  out.ell.width = width;
  out.ell.col_indices.assign(width * a.nrows, Ell<T>::kPad);
  out.ell.values.assign(width * a.nrows, T{});
  out.tail.nrows = a.nrows;
  out.tail.ncols = a.ncols;
  for (Index i = 0; i < a.nrows; ++i) {
    Index slot = 0;
    for (Index k = a.row_offsets[i]; k < a.row_offsets[i + 1]; ++k) {
      if (slot < width) {
        out.ell.col_indices[slot * a.nrows + i] = a.col_indices[k];
        out.ell.values[slot * a.nrows + i] = a.values[k];
        ++slot;
      } else {
        out.tail.row.push_back(i);
        out.tail.col.push_back(a.col_indices[k]);
        out.tail.val.push_back(a.values[k]);
      }
    }
  }
  return out;
}

template <typename T>
Csr<T> hyb_to_csr(const Hyb<T>& a) {
  Coo<T> merged = csr_to_coo(ell_to_csr(a.ell));
  merged.row.insert(merged.row.end(), a.tail.row.begin(), a.tail.row.end());
  merged.col.insert(merged.col.end(), a.tail.col.begin(), a.tail.col.end());
  merged.val.insert(merged.val.end(), a.tail.val.begin(), a.tail.val.end());
  return coo_to_csr(canonicalize(std::move(merged)));
}

template <typename T>
std::vector<T> spmv(const Coo<T>& a, const std::vector<T>& x) {
  detail::require(x.size() == a.ncols, "spmv: x size mismatch");
  std::vector<T> y(a.nrows, T{});
  for (Index k = 0; k < a.nnz(); ++k) y[a.row[k]] += a.val[k] * x[a.col[k]];
  return y;
}

template <typename T>
std::vector<T> spmv(const Csr<T>& a, const std::vector<T>& x) {
  detail::require(x.size() == a.ncols, "spmv: x size mismatch");
  std::vector<T> y(a.nrows, T{});
  for (Index i = 0; i < a.nrows; ++i) {
    T acc{};
    for (Index k = a.row_offsets[i]; k < a.row_offsets[i + 1]; ++k)
      acc += a.values[k] * x[a.col_indices[k]];
    y[i] = acc;
  }
  return y;
}

template <typename T>
std::vector<T> spmv(const Csc<T>& a, const std::vector<T>& x) {
  detail::require(x.size() == a.ncols, "spmv: x size mismatch");
  std::vector<T> y(a.nrows, T{});
  for (Index j = 0; j < a.ncols; ++j) {
    const T xj = x[j];
    for (Index k = a.col_offsets[j]; k < a.col_offsets[j + 1]; ++k)
      y[a.row_indices[k]] += a.values[k] * xj;
  }
  return y;
}

template <typename T>
std::vector<T> spmv(const Ell<T>& a, const std::vector<T>& x) {
  detail::require(x.size() == a.ncols, "spmv: x size mismatch");
  std::vector<T> y(a.nrows, T{});
  for (Index i = 0; i < a.nrows; ++i) {
    T acc{};
    for (Index s = 0; s < a.width; ++s) {
      const Index c = a.col_indices[s * a.nrows + i];
      if (c != Ell<T>::kPad) acc += a.values[s * a.nrows + i] * x[c];
    }
    y[i] = acc;
  }
  return y;
}

template <typename T>
std::vector<T> spmv(const Hyb<T>& a, const std::vector<T>& x) {
  detail::require(x.size() == a.ncols(), "spmv: x size mismatch");
  std::vector<T> y = spmv(a.ell, x);
  for (Index k = 0; k < a.tail.nnz(); ++k)
    y[a.tail.row[k]] += a.tail.val[k] * x[a.tail.col[k]];
  return y;
}

}  // namespace sparse
