#pragma once

/// @file spmv_select.hpp
/// Input-adaptive SpMV kernel selection (the GraphBLAST/Gunrock lesson): a
/// cheap inspector pass over the row-offsets array summarizes the degree
/// distribution, and a rule-based selector picks the kernel variant —
/// CSR-scalar, CSR-load-balanced, ELL, or HYB — whose cost model wins on
/// that shape. Decisions are recorded in DeviceStats::kernel_selections and
/// the estimated traffic avoided vs. the row-parallel CSR baseline in
/// DeviceStats::spmv_bytes_saved_vs_baseline.
///
/// Two consumers:
///   - AdaptiveSpmv<T>: an inspector-executor engine (cuSPARSE csrsv_analysis
///     style) that analyzes once, optionally converts format once, and then
///     serves repeated y = A*x calls with the chosen kernel;
///   - backend_gpu::mxv/vxm: the GraphBLAS hot path, which is locked to the
///     device-resident CSR/CSC structures and therefore only chooses between
///     the CSR-scalar and CSR-load-balanced schedules (allow_format_change =
///     false).

#include <cmath>
#include <cstdint>

#include "gpu_sim/context.hpp"
#include "sparse/formats.hpp"
#include "sparse/spmv_device.hpp"

namespace sparse {

using gpu_sim::SpmvKernelKind;

/// Degree-distribution summary produced by the inspector pass.
struct DegreeStats {
  Index nrows = 0;
  Index ncols = 0;
  Index nnz = 0;
  Index max_degree = 0;
  Index empty_rows = 0;
  double mean_degree = 0.0;    ///< over all rows, empty included
  double degree_stddev = 0.0;  ///< population stddev of row degrees
  /// Effective slots of the row-parallel CSR kernel under warp-granular
  /// padding (gpu_sim::warp_padded_items) — the baseline traffic unit.
  std::uint64_t warp_padded_slots = 0;
  /// HYB split at width = ceil(mean degree): nnz landing in the ELL slab
  /// and in the COO tail respectively.
  Index hyb_width = 0;
  Index hyb_tail_nnz = 0;

  /// Max/mean row degree: >> 1 on power-law inputs.
  double skew() const {
    return mean_degree > 0.0 ? static_cast<double>(max_degree) / mean_degree
                             : 0.0;
  }
  /// Coefficient of variation of row degrees.
  double cv() const {
    return mean_degree > 0.0 ? degree_stddev / mean_degree : 0.0;
  }
  /// ELL padding overhead: stored slots / useful entries.
  double ell_fill() const {
    return nnz > 0 ? static_cast<double>(max_degree) *
                         static_cast<double>(nrows) / static_cast<double>(nnz)
                   : 1.0;
  }
  double density() const {
    const double cells =
        static_cast<double>(nrows) * static_cast<double>(ncols);
    return cells > 0.0 ? static_cast<double>(nnz) / cells : 0.0;
  }
};

/// Inspector over a raw CSR offsets array (usable on the backend's
/// device-resident row_offsets without any transfer — the simulated device
/// memory is host-addressable; the *cost* of the pass is charged separately
/// by the caller via account_kernel).
inline DegreeStats analyze_offsets(const Index* offsets, Index nrows,
                                   Index ncols, std::uint32_t warp_size) {
  DegreeStats s;
  s.nrows = nrows;
  s.ncols = ncols;
  if (nrows == 0) return s;
  s.nnz = offsets[nrows];
  double sum_sq = 0.0;
  for (Index i = 0; i < nrows; ++i) {
    const Index deg = offsets[i + 1] - offsets[i];
    s.max_degree = std::max(s.max_degree, deg);
    if (deg == 0) ++s.empty_rows;
    sum_sq += static_cast<double>(deg) * static_cast<double>(deg);
  }
  s.mean_degree = static_cast<double>(s.nnz) / static_cast<double>(nrows);
  const double var =
      sum_sq / static_cast<double>(nrows) - s.mean_degree * s.mean_degree;
  s.degree_stddev = var > 0.0 ? std::sqrt(var) : 0.0;
  s.warp_padded_slots =
      gpu_sim::warp_padded_items(nrows, warp_size, [&](std::size_t i) {
        return offsets[i + 1] - offsets[i];
      });
  s.hyb_width = s.nnz > 0 ? (s.nnz + nrows - 1) / nrows : 1;
  if (s.hyb_width == 0) s.hyb_width = 1;
  for (Index i = 0; i < nrows; ++i) {
    const Index deg = offsets[i + 1] - offsets[i];
    if (deg > s.hyb_width) s.hyb_tail_nnz += deg - s.hyb_width;
  }
  return s;
}

template <typename T>
DegreeStats analyze(const Csr<T>& a, std::uint32_t warp_size) {
  return analyze_offsets(a.row_offsets.data(), a.nrows, a.ncols, warp_size);
}

/// Global dispatch override: Adaptive lets the heuristic decide; the Force*
/// modes pin every selection to one variant (differential tests sweep these
/// to prove all kernel paths agree bit-for-bit).
enum class SpmvMode {
  Adaptive,
  ForceCsrScalar,
  ForceCsrLoadBalanced,
  ForceEll,
  ForceHyb,
};

inline SpmvMode& spmv_mode() {
  static SpmvMode mode = SpmvMode::Adaptive;
  return mode;
}

/// RAII guard for tests/benches that pin the mode and must restore it.
class SpmvModeGuard {
 public:
  explicit SpmvModeGuard(SpmvMode mode) : saved_(spmv_mode()) {
    spmv_mode() = mode;
  }
  ~SpmvModeGuard() { spmv_mode() = saved_; }
  SpmvModeGuard(const SpmvModeGuard&) = delete;
  SpmvModeGuard& operator=(const SpmvModeGuard&) = delete;

 private:
  SpmvMode saved_;
};

// ---------------------------------------------------------------------------
// Traversal direction selection (push/pull, backend_gpu vxm/mxv)
// ---------------------------------------------------------------------------

using gpu_sim::TraversalDirection;

/// Global direction override: Auto lets the Beamer-style heuristic decide;
/// the Force* modes pin every traversal to one direction (differential
/// tests sweep these to prove push and pull agree bit-for-bit).
enum class DirectionMode {
  Auto,
  ForcePush,
  ForcePull,
};

inline DirectionMode& direction_mode() {
  static DirectionMode mode = DirectionMode::Auto;
  return mode;
}

/// RAII guard for tests/benches that pin the direction and must restore it.
class DirectionModeGuard {
 public:
  explicit DirectionModeGuard(DirectionMode mode) : saved_(direction_mode()) {
    direction_mode() = mode;
  }
  ~DirectionModeGuard() { direction_mode() = saved_; }
  DirectionModeGuard(const DirectionModeGuard&) = delete;
  DirectionModeGuard& operator=(const DirectionModeGuard&) = delete;

 private:
  DirectionMode saved_;
};

/// Beamer's direction-optimizing switch factor: pull becomes competitive
/// once the frontier's outgoing edges exceed 1/alpha of the edges still
/// pointing into the unvisited (mask-allowed) set, because an early-exiting
/// pull row touches ~alpha-fold fewer edges than its full degree.
inline constexpr double kPullAlpha = 14.0;

/// Shape summary of one masked traversal step (vxm frontier expansion or
/// its mxv transpose), gathered by the caller's inspector passes.
struct TraversalShape {
  std::uint64_t frontier_rows = 0;   ///< nnz of the input frontier
  std::uint64_t frontier_edges = 0;  ///< out-edges of the frontier
  std::uint64_t dest_rows = 0;       ///< mask-allowed destination vertices
  std::uint64_t dest_edges = 0;      ///< in-edges of those destinations
  std::uint64_t n = 0;               ///< vector length
  std::uint64_t nnz = 0;             ///< matrix nonzeros
  bool can_early_exit = false;       ///< additive monoid has an annihilator
  bool transpose_cached = true;      ///< CSC view already materialized
};

/// Modeled one-time cost of materializing the transpose (CSC) view a pull
/// traversal gathers through: flatten to column-major keys, 4-pass radix
/// argsort over (key, index) pairs, two permutation gathers, a split pass,
/// and a vectorized lower_bound for the offsets. Mirrors the LaunchStats
/// ensure_csc actually charges so the direction choice cannot pick a pull
/// step whose savings the build would swallow.
inline double estimated_transpose_build_time(
    std::uint64_t n, std::uint64_t nnz, std::size_t value_bytes,
    const gpu_sim::DeviceProperties& props) {
  std::uint64_t log_n = 1;
  while ((1ull << log_n) < std::max<std::uint64_t>(nnz, 2)) ++log_n;
  const std::uint64_t bytes =
      nnz * (8 * (sizeof(Index) + sizeof(Index))  // radix argsort passes
             + 3 * sizeof(Index)                  // key gather
             + sizeof(Index) + 2 * value_bytes    // value gather
             + 2 * sizeof(Index)                  // column-major expand
             + 3 * sizeof(Index)) +               // row/col split
      n * (2 * sizeof(Index) + log_n * sizeof(Index));  // expand + offsets
  const double compute =
      static_cast<double>(6 * nnz) / props.compute_throughput_ops_per_s;
  const double memory =
      static_cast<double>(bytes) / props.memory_bandwidth_bytes_per_s;
  return 9 * props.kernel_launch_overhead_s +
         (compute > memory ? compute : memory);
}

/// Estimated global-memory traffic of one push-direction step: the sparse
/// index list, two offsets per frontier row, the frontier's values, and per
/// out-edge the column index + matrix value + scattered t value/presence.
inline std::uint64_t estimated_push_traversal_bytes(const TraversalShape& s,
                                                    std::size_t value_bytes) {
  return s.frontier_rows * (3 * sizeof(Index) + value_bytes) +
         s.frontier_edges * (sizeof(Index) + 2 * value_bytes + 1);
}

/// Expected in-edges a pull step actually scans: with an annihilating
/// additive monoid each destination row stops at its first frontier hit —
/// ~alpha-fold fewer touched edges on traversal shapes; without one every
/// row must fold to completion.
inline std::uint64_t expected_pull_scanned_edges(const TraversalShape& s) {
  if (!s.can_early_exit) return s.dest_edges;
  const std::uint64_t expected =
      static_cast<std::uint64_t>(static_cast<double>(s.dest_edges) /
                                 kPullAlpha);
  return expected > s.dest_rows ? expected : s.dest_rows;
}

/// Estimated traffic of one pull-direction step: mask-flag build +
/// destination compaction (n-sized streaming passes), two offsets + one t
/// write per destination row, and per scanned in-edge the source row index,
/// matrix value, and source presence/value probes.
inline std::uint64_t estimated_pull_traversal_bytes(const TraversalShape& s,
                                                    std::size_t value_bytes) {
  return 3 * s.n +
         s.dest_rows * (3 * sizeof(Index) + value_bytes + 1) +
         expected_pull_scanned_edges(s) *
             (sizeof(Index) + 2 * value_bytes + 1);
}

/// Modeled time of one traversal step in @p direction: fixed launch
/// overheads (pull pays extra launches for mask flags, destination
/// compaction, and its inspector) plus the roofline max of compute and
/// memory time — the same shape as estimated_spmv_time so the two engines
/// share one calibration.
inline double estimated_traversal_time(TraversalDirection direction,
                                       const TraversalShape& s,
                                       std::size_t value_bytes,
                                       const gpu_sim::DeviceProperties& props) {
  std::uint64_t bytes = 0;
  std::uint64_t edges = 0;
  unsigned launches = 0;
  if (direction == TraversalDirection::kPush) {
    bytes = estimated_push_traversal_bytes(s, value_bytes);
    edges = s.frontier_edges;
    launches = 2;  // frontier-degree inspector + scatter
  } else {
    bytes = estimated_pull_traversal_bytes(s, value_bytes);
    edges = expected_pull_scanned_edges(s);
    launches = 5;  // mask flags, compaction (scan+scatter), inspector, gather
  }
  const double compute =
      static_cast<double>(2 * edges) / props.compute_throughput_ops_per_s;
  const double memory =
      static_cast<double>(bytes) / props.memory_bandwidth_bytes_per_s;
  double time = launches * props.kernel_launch_overhead_s +
                (compute > memory ? compute : memory);
  // A pull step against a cold transpose pays the full CSC build up front;
  // fold it into pull's bill so Auto only flips direction once the gather
  // view is already (or about to be) amortized.
  if (direction == TraversalDirection::kPull && !s.transpose_cached)
    time += estimated_transpose_build_time(s.n, s.nnz, value_bytes, props);
  return time;
}

/// Pick the traversal direction for one masked vxm/mxv step.
///
/// Beamer's inequality proposes: pull once frontier out-edges exceed
/// dest_edges / alpha (the frontier is "heavy" relative to what remains).
/// When device properties are supplied the roofline model ratifies the
/// proposal — pull's extra fixed launches must actually be paid for — the
/// same propose-then-ratify structure as select_kernel. Pull is only
/// proposed when the semiring's additive monoid can early-exit; a
/// non-annihilating fold (e.g. min-plus over doubles) scans every in-edge
/// and cannot beat a frontier-sized push.
inline TraversalDirection select_direction(
    const TraversalShape& s, DirectionMode mode = direction_mode(),
    const gpu_sim::DeviceProperties* props = nullptr,
    std::size_t value_bytes = sizeof(double)) {
  switch (mode) {
    case DirectionMode::ForcePush:
      return TraversalDirection::kPush;
    case DirectionMode::ForcePull:
      return TraversalDirection::kPull;
    case DirectionMode::Auto:
      break;
  }
  if (!s.can_early_exit || s.dest_edges == 0)
    return TraversalDirection::kPush;
  const bool heavy =
      static_cast<double>(s.frontier_edges) * kPullAlpha >=
      static_cast<double>(s.dest_edges);
  if (!heavy) return TraversalDirection::kPush;
  if (props &&
      estimated_traversal_time(TraversalDirection::kPull, s, value_bytes,
                               *props) >
          estimated_traversal_time(TraversalDirection::kPush, s, value_bytes,
                                   *props))
    return TraversalDirection::kPush;
  return TraversalDirection::kPull;
}

// Selection thresholds. Derived from the cost model, not tuned per input:
// ELL only pays when padding is near-free; the load-balanced schedule pays
// once warp-granular padding inflates baseline traffic by the skew factor;
// HYB sits between when a format change is on the table.
inline constexpr double kEllMaxFill = 1.25;
inline constexpr Index kEllMaxWidth = 512;
inline constexpr double kLbSkewThreshold = 8.0;
inline constexpr double kLbCvThreshold = 1.0;
inline constexpr double kHybSkewThreshold = 3.0;

/// Estimated steady-state global-memory traffic of one y = A*x under each
/// kernel variant, in bytes, with value type size @p value_bytes. Mirrors
/// the LaunchStats the kernels in spmv_device.hpp actually charge.
inline std::uint64_t estimated_spmv_bytes(SpmvKernelKind kind,
                                          const DegreeStats& s,
                                          std::size_t value_bytes) {
  const std::uint64_t entry = sizeof(Index) + 2 * value_bytes;
  const std::uint64_t offsets_bytes = (s.nrows + 1) * sizeof(Index);
  const std::uint64_t y_bytes = s.nrows * value_bytes;
  switch (kind) {
    case SpmvKernelKind::kCsrScalar:
      return s.warp_padded_slots * entry + offsets_bytes + y_bytes;
    case SpmvKernelKind::kCsrLoadBalanced: {
      const Index chunk = std::max<Index>(spmv_lb_chunk(), 1);
      const Index nteams = (s.nnz + chunk - 1) / chunk;
      return s.nnz * entry + offsets_bytes + y_bytes +
             4 * nteams * (sizeof(Index) + value_bytes + 1);
    }
    case SpmvKernelKind::kEll:
      return static_cast<std::uint64_t>(s.max_degree) * s.nrows * entry +
             y_bytes;
    case SpmvKernelKind::kHyb:
      return static_cast<std::uint64_t>(s.hyb_width) * s.nrows * entry +
             s.hyb_tail_nnz * (2 * sizeof(Index) + 3 * value_bytes) + y_bytes;
    case SpmvKernelKind::kCount:
      break;
  }
  return 0;
}

/// Traffic avoided per call by @p kind relative to the row-parallel CSR
/// baseline (clamped at zero: a choice never "saves" negative bytes — it is
/// made for launch-count or robustness reasons instead).
inline std::uint64_t estimated_bytes_saved(SpmvKernelKind kind,
                                           const DegreeStats& s,
                                           std::size_t value_bytes) {
  const std::uint64_t baseline =
      estimated_spmv_bytes(SpmvKernelKind::kCsrScalar, s, value_bytes);
  const std::uint64_t chosen = estimated_spmv_bytes(kind, s, value_bytes);
  return baseline > chosen ? baseline - chosen : 0;
}

/// Approximate scalar-op count per call, mirroring the kernels' declared
/// LaunchStats (memory traffic dominates at ~0.1 ops/byte, but the estimate
/// keeps the roofline max() honest).
inline std::uint64_t estimated_spmv_ops(SpmvKernelKind kind,
                                        const DegreeStats& s) {
  switch (kind) {
    case SpmvKernelKind::kCsrScalar:
      return 2 * s.warp_padded_slots;
    case SpmvKernelKind::kCsrLoadBalanced: {
      const Index chunk = std::max<Index>(spmv_lb_chunk(), 1);
      const Index nteams = (s.nnz + chunk - 1) / chunk;
      return 2 * s.nnz + 8 * nteams + 8 * 2 * nteams;
    }
    case SpmvKernelKind::kEll:
      return 2 * static_cast<std::uint64_t>(s.max_degree) * s.nrows;
    case SpmvKernelKind::kHyb:
      return 2 * static_cast<std::uint64_t>(s.hyb_width) * s.nrows +
             8 * static_cast<std::uint64_t>(s.hyb_tail_nnz);
    case SpmvKernelKind::kCount:
      break;
  }
  return 0;
}

/// Kernel launches per call: the load-balanced schedule pays a fixup launch,
/// HYB pays a tail launch. At small sizes these fixed overheads decide the
/// race, which is why the selector ratifies choices against the full model.
inline unsigned estimated_launch_count(SpmvKernelKind kind,
                                       const DegreeStats& s) {
  switch (kind) {
    case SpmvKernelKind::kCsrLoadBalanced:
      return 2;
    case SpmvKernelKind::kHyb:
      return s.hyb_tail_nnz > 0 ? 2 : 1;
    default:
      return 1;
  }
}

/// Modeled steady-state time of one y = A*x call under @p kind: launch
/// overheads plus the roofline max of compute and memory time.
inline double estimated_spmv_time(SpmvKernelKind kind, const DegreeStats& s,
                                  std::size_t value_bytes,
                                  const gpu_sim::DeviceProperties& props) {
  const double compute = static_cast<double>(estimated_spmv_ops(kind, s)) /
                         props.compute_throughput_ops_per_s;
  const double memory =
      static_cast<double>(estimated_spmv_bytes(kind, s, value_bytes)) /
      props.memory_bandwidth_bytes_per_s;
  return estimated_launch_count(kind, s) * props.kernel_launch_overhead_s +
         (compute > memory ? compute : memory);
}

/// Pick the kernel variant for a matrix with degree summary @p s.
///
/// The degree heuristic proposes a candidate; when device properties are
/// supplied, the cost model ratifies it — a proposal whose modeled time
/// (launch overheads included) loses to the row-parallel baseline is
/// discarded. This keeps small launch-bound inputs on the single-launch
/// scalar kernel even when their shape is skewed.
///
/// @param allow_format_change  false on the GraphBLAS backend hot path,
///   where the matrix is locked to device-resident CSR: only the two CSR
///   schedules are reachable and forced ELL/HYB modes degrade to them.
inline SpmvKernelKind select_kernel(
    const DegreeStats& s, bool allow_format_change,
    SpmvMode mode = spmv_mode(),
    const gpu_sim::DeviceProperties* props = nullptr,
    std::size_t value_bytes = sizeof(double)) {
  switch (mode) {
    case SpmvMode::ForceCsrScalar:
      return SpmvKernelKind::kCsrScalar;
    case SpmvMode::ForceCsrLoadBalanced:
      return SpmvKernelKind::kCsrLoadBalanced;
    case SpmvMode::ForceEll:
      return allow_format_change ? SpmvKernelKind::kEll
                                 : SpmvKernelKind::kCsrScalar;
    case SpmvMode::ForceHyb:
      return allow_format_change ? SpmvKernelKind::kHyb
                                 : SpmvKernelKind::kCsrLoadBalanced;
    case SpmvMode::Adaptive:
      break;
  }
  SpmvKernelKind pick = SpmvKernelKind::kCsrScalar;
  if (s.nnz == 0) return pick;
  if (allow_format_change && s.ell_fill() <= kEllMaxFill &&
      s.max_degree <= kEllMaxWidth)
    pick = SpmvKernelKind::kEll;
  else if (s.skew() >= kLbSkewThreshold || s.cv() >= kLbCvThreshold)
    pick = SpmvKernelKind::kCsrLoadBalanced;
  else if (allow_format_change && s.skew() >= kHybSkewThreshold)
    pick = SpmvKernelKind::kHyb;
  if (props && pick != SpmvKernelKind::kCsrScalar &&
      estimated_spmv_time(pick, s, value_bytes, *props) >
          estimated_spmv_time(SpmvKernelKind::kCsrScalar, s, value_bytes,
                              *props))
    pick = SpmvKernelKind::kCsrScalar;
  return pick;
}

/// Inspector-executor SpMV engine: analyze once, convert format at most
/// once, then serve repeated y = A*x calls with the selected kernel. The
/// benches time the steady-state call, attributing the one-time analysis
/// the way cuSPARSE attributes csrmv_analysis.
template <typename T>
class AdaptiveSpmv {
 public:
  AdaptiveSpmv(Csr<T> a, gpu_sim::Context& ctx,
               SpmvMode mode = spmv_mode())
      : csr_(std::move(a)), ctx_(&ctx) {
    stats_ = analyze(csr_, ctx.properties().warp_size);
    // Inspector kernel: one streaming pass over the offsets array.
    ctx.account_kernel(gpu_sim::LaunchStats{
        csr_.nrows + 1, (csr_.nrows + 1) * sizeof(Index), 64});
    kind_ = select_kernel(stats_, /*allow_format_change=*/true, mode,
                          &ctx.properties(), sizeof(T));
    bytes_saved_per_call_ = estimated_bytes_saved(kind_, stats_, sizeof(T));
    if (kind_ == SpmvKernelKind::kEll)
      ell_ = csr_to_ell(csr_);
    else if (kind_ == SpmvKernelKind::kHyb)
      hyb_ = csr_to_hyb(csr_);
  }

  SpmvKernelKind kernel() const { return kind_; }
  const DegreeStats& degree_stats() const { return stats_; }

  std::vector<T> operator()(const std::vector<T>& x) const {
    ctx_->note_spmv_selection(kind_, bytes_saved_per_call_);
    switch (kind_) {
      case SpmvKernelKind::kCsrLoadBalanced:
        return spmv_device_lb(csr_, x, *ctx_);
      case SpmvKernelKind::kEll:
        return spmv_device(ell_, x, *ctx_);
      case SpmvKernelKind::kHyb:
        return spmv_device(hyb_, x, *ctx_);
      case SpmvKernelKind::kCsrScalar:
      case SpmvKernelKind::kCount:
        break;
    }
    return spmv_device(csr_, x, *ctx_);
  }

 private:
  Csr<T> csr_;
  gpu_sim::Context* ctx_;
  DegreeStats stats_;
  SpmvKernelKind kind_ = SpmvKernelKind::kCsrScalar;
  std::uint64_t bytes_saved_per_call_ = 0;
  Ell<T> ell_;
  Hyb<T> hyb_;
};

}  // namespace sparse
