#pragma once

/// @file spmv_select.hpp
/// Input-adaptive SpMV kernel selection (the GraphBLAST/Gunrock lesson): a
/// cheap inspector pass over the row-offsets array summarizes the degree
/// distribution, and a rule-based selector picks the kernel variant —
/// CSR-scalar, CSR-load-balanced, ELL, or HYB — whose cost model wins on
/// that shape. Decisions are recorded in DeviceStats::kernel_selections and
/// the estimated traffic avoided vs. the row-parallel CSR baseline in
/// DeviceStats::spmv_bytes_saved_vs_baseline.
///
/// Two consumers:
///   - AdaptiveSpmv<T>: an inspector-executor engine (cuSPARSE csrsv_analysis
///     style) that analyzes once, optionally converts format once, and then
///     serves repeated y = A*x calls with the chosen kernel;
///   - backend_gpu::mxv/vxm: the GraphBLAS hot path, which is locked to the
///     device-resident CSR/CSC structures and therefore only chooses between
///     the CSR-scalar and CSR-load-balanced schedules (allow_format_change =
///     false).

#include <cmath>
#include <cstdint>

#include "gpu_sim/context.hpp"
#include "sparse/formats.hpp"
#include "sparse/spmv_device.hpp"

namespace sparse {

using gpu_sim::SpmvKernelKind;

/// Degree-distribution summary produced by the inspector pass.
struct DegreeStats {
  Index nrows = 0;
  Index ncols = 0;
  Index nnz = 0;
  Index max_degree = 0;
  Index empty_rows = 0;
  double mean_degree = 0.0;    ///< over all rows, empty included
  double degree_stddev = 0.0;  ///< population stddev of row degrees
  /// Effective slots of the row-parallel CSR kernel under warp-granular
  /// padding (gpu_sim::warp_padded_items) — the baseline traffic unit.
  std::uint64_t warp_padded_slots = 0;
  /// HYB split at width = ceil(mean degree): nnz landing in the ELL slab
  /// and in the COO tail respectively.
  Index hyb_width = 0;
  Index hyb_tail_nnz = 0;

  /// Max/mean row degree: >> 1 on power-law inputs.
  double skew() const {
    return mean_degree > 0.0 ? static_cast<double>(max_degree) / mean_degree
                             : 0.0;
  }
  /// Coefficient of variation of row degrees.
  double cv() const {
    return mean_degree > 0.0 ? degree_stddev / mean_degree : 0.0;
  }
  /// ELL padding overhead: stored slots / useful entries.
  double ell_fill() const {
    return nnz > 0 ? static_cast<double>(max_degree) *
                         static_cast<double>(nrows) / static_cast<double>(nnz)
                   : 1.0;
  }
  double density() const {
    const double cells =
        static_cast<double>(nrows) * static_cast<double>(ncols);
    return cells > 0.0 ? static_cast<double>(nnz) / cells : 0.0;
  }
};

/// Inspector over a raw CSR offsets array (usable on the backend's
/// device-resident row_offsets without any transfer — the simulated device
/// memory is host-addressable; the *cost* of the pass is charged separately
/// by the caller via account_kernel).
inline DegreeStats analyze_offsets(const Index* offsets, Index nrows,
                                   Index ncols, std::uint32_t warp_size) {
  DegreeStats s;
  s.nrows = nrows;
  s.ncols = ncols;
  if (nrows == 0) return s;
  s.nnz = offsets[nrows];
  double sum_sq = 0.0;
  for (Index i = 0; i < nrows; ++i) {
    const Index deg = offsets[i + 1] - offsets[i];
    s.max_degree = std::max(s.max_degree, deg);
    if (deg == 0) ++s.empty_rows;
    sum_sq += static_cast<double>(deg) * static_cast<double>(deg);
  }
  s.mean_degree = static_cast<double>(s.nnz) / static_cast<double>(nrows);
  const double var =
      sum_sq / static_cast<double>(nrows) - s.mean_degree * s.mean_degree;
  s.degree_stddev = var > 0.0 ? std::sqrt(var) : 0.0;
  s.warp_padded_slots =
      gpu_sim::warp_padded_items(nrows, warp_size, [&](std::size_t i) {
        return offsets[i + 1] - offsets[i];
      });
  s.hyb_width = s.nnz > 0 ? (s.nnz + nrows - 1) / nrows : 1;
  if (s.hyb_width == 0) s.hyb_width = 1;
  for (Index i = 0; i < nrows; ++i) {
    const Index deg = offsets[i + 1] - offsets[i];
    if (deg > s.hyb_width) s.hyb_tail_nnz += deg - s.hyb_width;
  }
  return s;
}

template <typename T>
DegreeStats analyze(const Csr<T>& a, std::uint32_t warp_size) {
  return analyze_offsets(a.row_offsets.data(), a.nrows, a.ncols, warp_size);
}

/// Global dispatch override: Adaptive lets the heuristic decide; the Force*
/// modes pin every selection to one variant (differential tests sweep these
/// to prove all kernel paths agree bit-for-bit).
enum class SpmvMode {
  Adaptive,
  ForceCsrScalar,
  ForceCsrLoadBalanced,
  ForceEll,
  ForceHyb,
};

inline SpmvMode& spmv_mode() {
  static SpmvMode mode = SpmvMode::Adaptive;
  return mode;
}

/// RAII guard for tests/benches that pin the mode and must restore it.
class SpmvModeGuard {
 public:
  explicit SpmvModeGuard(SpmvMode mode) : saved_(spmv_mode()) {
    spmv_mode() = mode;
  }
  ~SpmvModeGuard() { spmv_mode() = saved_; }
  SpmvModeGuard(const SpmvModeGuard&) = delete;
  SpmvModeGuard& operator=(const SpmvModeGuard&) = delete;

 private:
  SpmvMode saved_;
};

// Selection thresholds. Derived from the cost model, not tuned per input:
// ELL only pays when padding is near-free; the load-balanced schedule pays
// once warp-granular padding inflates baseline traffic by the skew factor;
// HYB sits between when a format change is on the table.
inline constexpr double kEllMaxFill = 1.25;
inline constexpr Index kEllMaxWidth = 512;
inline constexpr double kLbSkewThreshold = 8.0;
inline constexpr double kLbCvThreshold = 1.0;
inline constexpr double kHybSkewThreshold = 3.0;

/// Estimated steady-state global-memory traffic of one y = A*x under each
/// kernel variant, in bytes, with value type size @p value_bytes. Mirrors
/// the LaunchStats the kernels in spmv_device.hpp actually charge.
inline std::uint64_t estimated_spmv_bytes(SpmvKernelKind kind,
                                          const DegreeStats& s,
                                          std::size_t value_bytes) {
  const std::uint64_t entry = sizeof(Index) + 2 * value_bytes;
  const std::uint64_t offsets_bytes = (s.nrows + 1) * sizeof(Index);
  const std::uint64_t y_bytes = s.nrows * value_bytes;
  switch (kind) {
    case SpmvKernelKind::kCsrScalar:
      return s.warp_padded_slots * entry + offsets_bytes + y_bytes;
    case SpmvKernelKind::kCsrLoadBalanced: {
      const Index chunk = std::max<Index>(spmv_lb_chunk(), 1);
      const Index nteams = (s.nnz + chunk - 1) / chunk;
      return s.nnz * entry + offsets_bytes + y_bytes +
             4 * nteams * (sizeof(Index) + value_bytes + 1);
    }
    case SpmvKernelKind::kEll:
      return static_cast<std::uint64_t>(s.max_degree) * s.nrows * entry +
             y_bytes;
    case SpmvKernelKind::kHyb:
      return static_cast<std::uint64_t>(s.hyb_width) * s.nrows * entry +
             s.hyb_tail_nnz * (2 * sizeof(Index) + 3 * value_bytes) + y_bytes;
    case SpmvKernelKind::kCount:
      break;
  }
  return 0;
}

/// Traffic avoided per call by @p kind relative to the row-parallel CSR
/// baseline (clamped at zero: a choice never "saves" negative bytes — it is
/// made for launch-count or robustness reasons instead).
inline std::uint64_t estimated_bytes_saved(SpmvKernelKind kind,
                                           const DegreeStats& s,
                                           std::size_t value_bytes) {
  const std::uint64_t baseline =
      estimated_spmv_bytes(SpmvKernelKind::kCsrScalar, s, value_bytes);
  const std::uint64_t chosen = estimated_spmv_bytes(kind, s, value_bytes);
  return baseline > chosen ? baseline - chosen : 0;
}

/// Approximate scalar-op count per call, mirroring the kernels' declared
/// LaunchStats (memory traffic dominates at ~0.1 ops/byte, but the estimate
/// keeps the roofline max() honest).
inline std::uint64_t estimated_spmv_ops(SpmvKernelKind kind,
                                        const DegreeStats& s) {
  switch (kind) {
    case SpmvKernelKind::kCsrScalar:
      return 2 * s.warp_padded_slots;
    case SpmvKernelKind::kCsrLoadBalanced: {
      const Index chunk = std::max<Index>(spmv_lb_chunk(), 1);
      const Index nteams = (s.nnz + chunk - 1) / chunk;
      return 2 * s.nnz + 8 * nteams + 8 * 2 * nteams;
    }
    case SpmvKernelKind::kEll:
      return 2 * static_cast<std::uint64_t>(s.max_degree) * s.nrows;
    case SpmvKernelKind::kHyb:
      return 2 * static_cast<std::uint64_t>(s.hyb_width) * s.nrows +
             8 * static_cast<std::uint64_t>(s.hyb_tail_nnz);
    case SpmvKernelKind::kCount:
      break;
  }
  return 0;
}

/// Kernel launches per call: the load-balanced schedule pays a fixup launch,
/// HYB pays a tail launch. At small sizes these fixed overheads decide the
/// race, which is why the selector ratifies choices against the full model.
inline unsigned estimated_launch_count(SpmvKernelKind kind,
                                       const DegreeStats& s) {
  switch (kind) {
    case SpmvKernelKind::kCsrLoadBalanced:
      return 2;
    case SpmvKernelKind::kHyb:
      return s.hyb_tail_nnz > 0 ? 2 : 1;
    default:
      return 1;
  }
}

/// Modeled steady-state time of one y = A*x call under @p kind: launch
/// overheads plus the roofline max of compute and memory time.
inline double estimated_spmv_time(SpmvKernelKind kind, const DegreeStats& s,
                                  std::size_t value_bytes,
                                  const gpu_sim::DeviceProperties& props) {
  const double compute = static_cast<double>(estimated_spmv_ops(kind, s)) /
                         props.compute_throughput_ops_per_s;
  const double memory =
      static_cast<double>(estimated_spmv_bytes(kind, s, value_bytes)) /
      props.memory_bandwidth_bytes_per_s;
  return estimated_launch_count(kind, s) * props.kernel_launch_overhead_s +
         (compute > memory ? compute : memory);
}

/// Pick the kernel variant for a matrix with degree summary @p s.
///
/// The degree heuristic proposes a candidate; when device properties are
/// supplied, the cost model ratifies it — a proposal whose modeled time
/// (launch overheads included) loses to the row-parallel baseline is
/// discarded. This keeps small launch-bound inputs on the single-launch
/// scalar kernel even when their shape is skewed.
///
/// @param allow_format_change  false on the GraphBLAS backend hot path,
///   where the matrix is locked to device-resident CSR: only the two CSR
///   schedules are reachable and forced ELL/HYB modes degrade to them.
inline SpmvKernelKind select_kernel(
    const DegreeStats& s, bool allow_format_change,
    SpmvMode mode = spmv_mode(),
    const gpu_sim::DeviceProperties* props = nullptr,
    std::size_t value_bytes = sizeof(double)) {
  switch (mode) {
    case SpmvMode::ForceCsrScalar:
      return SpmvKernelKind::kCsrScalar;
    case SpmvMode::ForceCsrLoadBalanced:
      return SpmvKernelKind::kCsrLoadBalanced;
    case SpmvMode::ForceEll:
      return allow_format_change ? SpmvKernelKind::kEll
                                 : SpmvKernelKind::kCsrScalar;
    case SpmvMode::ForceHyb:
      return allow_format_change ? SpmvKernelKind::kHyb
                                 : SpmvKernelKind::kCsrLoadBalanced;
    case SpmvMode::Adaptive:
      break;
  }
  SpmvKernelKind pick = SpmvKernelKind::kCsrScalar;
  if (s.nnz == 0) return pick;
  if (allow_format_change && s.ell_fill() <= kEllMaxFill &&
      s.max_degree <= kEllMaxWidth)
    pick = SpmvKernelKind::kEll;
  else if (s.skew() >= kLbSkewThreshold || s.cv() >= kLbCvThreshold)
    pick = SpmvKernelKind::kCsrLoadBalanced;
  else if (allow_format_change && s.skew() >= kHybSkewThreshold)
    pick = SpmvKernelKind::kHyb;
  if (props && pick != SpmvKernelKind::kCsrScalar &&
      estimated_spmv_time(pick, s, value_bytes, *props) >
          estimated_spmv_time(SpmvKernelKind::kCsrScalar, s, value_bytes,
                              *props))
    pick = SpmvKernelKind::kCsrScalar;
  return pick;
}

/// Inspector-executor SpMV engine: analyze once, convert format at most
/// once, then serve repeated y = A*x calls with the selected kernel. The
/// benches time the steady-state call, attributing the one-time analysis
/// the way cuSPARSE attributes csrmv_analysis.
template <typename T>
class AdaptiveSpmv {
 public:
  AdaptiveSpmv(Csr<T> a, gpu_sim::Context& ctx,
               SpmvMode mode = spmv_mode())
      : csr_(std::move(a)), ctx_(&ctx) {
    stats_ = analyze(csr_, ctx.properties().warp_size);
    // Inspector kernel: one streaming pass over the offsets array.
    ctx.account_kernel(gpu_sim::LaunchStats{
        csr_.nrows + 1, (csr_.nrows + 1) * sizeof(Index), 64});
    kind_ = select_kernel(stats_, /*allow_format_change=*/true, mode,
                          &ctx.properties(), sizeof(T));
    bytes_saved_per_call_ = estimated_bytes_saved(kind_, stats_, sizeof(T));
    if (kind_ == SpmvKernelKind::kEll)
      ell_ = csr_to_ell(csr_);
    else if (kind_ == SpmvKernelKind::kHyb)
      hyb_ = csr_to_hyb(csr_);
  }

  SpmvKernelKind kernel() const { return kind_; }
  const DegreeStats& degree_stats() const { return stats_; }

  std::vector<T> operator()(const std::vector<T>& x) const {
    ctx_->note_spmv_selection(kind_, bytes_saved_per_call_);
    switch (kind_) {
      case SpmvKernelKind::kCsrLoadBalanced:
        return spmv_device_lb(csr_, x, *ctx_);
      case SpmvKernelKind::kEll:
        return spmv_device(ell_, x, *ctx_);
      case SpmvKernelKind::kHyb:
        return spmv_device(hyb_, x, *ctx_);
      case SpmvKernelKind::kCsrScalar:
      case SpmvKernelKind::kCount:
        break;
    }
    return spmv_device(csr_, x, *ctx_);
  }

 private:
  Csr<T> csr_;
  gpu_sim::Context* ctx_;
  DegreeStats stats_;
  SpmvKernelKind kind_ = SpmvKernelKind::kCsrScalar;
  std::uint64_t bytes_saved_per_call_ = 0;
  Ell<T> ell_;
  Hyb<T> hyb_;
};

}  // namespace sparse
