#pragma once

/// @file output_pipeline.hpp
/// Backend epilogue executors for the masked-accumulate output pipeline.
/// Both backends finish every operation here: the sequential backend with
/// scalar merge loops, the gpu_sim backend with a fused scatter kernel
/// (vectors) and a sorted-COO merge (matrices). All four executors resolve
/// each position through grb::write_rules, so the Merge/Replace/accumulate
/// semantics live in exactly one place.
///
/// The executors are templated over the container types (everything needed
/// is the documented container API: present_unchecked/set_unchecked/... for
/// sequential vectors, row/set_row for sequential matrices, values()/
/// present()/context() for device vectors, CSR accessors +
/// load_from_sorted_keys for device matrices), so this header depends on
/// gpu_sim but on neither backend.

#include <cstdint>
#include <type_traits>
#include <utility>

#include "backend_cpupar/pool.hpp"
#include "gbtl/types.hpp"
#include "gbtl/write_rules.hpp"
#include "gpu_sim/algorithms.hpp"
#include "gpu_sim/context.hpp"
#include "gpu_sim/device_vector.hpp"

namespace grb::pipeline {

// ===========================================================================
// Host-side mask interpretation (sequential backend + host fallbacks)
// ===========================================================================

/// Does the mask allow writing matrix position (i, j)?
template <typename MObj>
bool mask_allows(const MaskDesc<MObj>& m, IndexType i, IndexType j) {
  if constexpr (std::is_same_v<MObj, EmptyMaskObj>) {
    (void)m, (void)i, (void)j;
    return true;
  } else {
    if (m.mask == nullptr) return true;
    const auto* v = m.mask->find(i, j);
    const bool present =
        (v != nullptr) && (m.structural || write_rules::truthy(*v));
    return m.complement ? !present : present;
  }
}

/// Does the mask allow writing vector position i?
template <typename MObj>
bool mask_allows(const MaskDesc<MObj>& m, IndexType i) {
  if constexpr (std::is_same_v<MObj, EmptyMaskObj>) {
    (void)m, (void)i;
    return true;
  } else {
    if (m.mask == nullptr) return true;
    const bool present =
        m.mask->present_unchecked(i) &&
        (m.structural || write_rules::truthy(m.mask->value_unchecked(i)));
    return m.complement ? !present : present;
  }
}

// ===========================================================================
// Sequential epilogues: scalar loops over the stored entries
// ===========================================================================

/// One merged output row: sorted merge of C's and T̃'s entry streams for row
/// i, each position resolved through write_rules. The per-row unit shared by
/// the serial epilogue and the CpuPar row-parallel one.
template <typename CMat, typename TMat, typename MObj, typename Accum>
typename CMat::Row merge_matrix_row(const CMat& C, const TMat& T,
                                    const OutputDescriptor<MObj>& out,
                                    Accum accum, IndexType i) {
  using CT = typename CMat::ScalarType;
  const auto& crow = C.row(i);
  const auto& trow = T.row(i);
  typename CMat::Row merged;
  merged.reserve(crow.size() + trow.size());
  std::size_t ci = 0, ti = 0;
  while (ci < crow.size() || ti < trow.size()) {
    IndexType j;
    bool has_c = false, has_t = false;
    if (ci < crow.size() && ti < trow.size()) {
      if (crow[ci].first < trow[ti].first) {
        j = crow[ci].first;
        has_c = true;
      } else if (trow[ti].first < crow[ci].first) {
        j = trow[ti].first;
        has_t = true;
      } else {
        j = crow[ci].first;
        has_c = has_t = true;
      }
    } else if (ci < crow.size()) {
      j = crow[ci].first;
      has_c = true;
    } else {
      j = trow[ti].first;
      has_t = true;
    }

    const CT cval = has_c ? crow[ci].second : CT{};
    const auto tval = has_t ? trow[ti].second : typename TMat::ScalarType{};
    if (has_c) ++ci;
    if (has_t) ++ti;

    const auto entry =
        mask_allows(out.mask, i, j)
            ? write_rules::resolve_allowed(accum, has_c, cval, has_t, tval)
            : write_rules::resolve_disallowed(out.replace, has_c, cval);
    if (entry.present) merged.emplace_back(j, entry.value);
  }
  return merged;
}

/// Matrix epilogue: row-by-row merge through merge_matrix_row.
template <typename CMat, typename TMat, typename MObj, typename Accum>
void write_matrix(CMat& C, const TMat& T, const OutputDescriptor<MObj>& out,
                  Accum accum) {
  for (IndexType i = 0; i < C.nrows(); ++i)
    C.set_row(i, merge_matrix_row(C, T, out, accum, i));
}

/// CpuPar matrix epilogue: the same per-row merge, rows distributed over the
/// ambient cpupar_backend::pool(). Each row's merge chain is exactly the
/// serial one, and set_row touches only that row's storage, so the result is
/// bit-identical to write_matrix at any worker count.
template <typename CMat, typename TMat, typename MObj, typename Accum>
void write_matrix_par(CMat& C, const TMat& T,
                      const OutputDescriptor<MObj>& out, Accum accum) {
  cpupar_backend::parallel_ranges(
      C.nrows(), cpupar_backend::kVectorChunk,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
          C.set_row(i, merge_matrix_row(C, T, out, accum, i));
      });
}

/// Resolve one vector slot in place. The per-slot unit shared by the serial
/// epilogue and the CpuPar chunk-parallel one.
template <typename WVec, typename TVec, typename MObj, typename Accum>
void write_vector_slot(WVec& w, const TVec& T,
                       const OutputDescriptor<MObj>& out, Accum accum,
                       IndexType i) {
  using WT = typename WVec::ScalarType;
  const bool has_w = w.present_unchecked(i);
  const bool has_t = T.present_unchecked(i);
  const WT wval = has_w ? w.value_unchecked(i) : WT{};
  const auto tval = has_t ? T.value_unchecked(i) : typename TVec::ScalarType{};
  const auto entry =
      mask_allows(out.mask, i)
          ? write_rules::resolve_allowed(accum, has_w, wval, has_t, tval)
          : write_rules::resolve_disallowed(out.replace, has_w, wval);
  if (entry.present)
    w.set_unchecked(i, entry.value);
  else if (has_w)
    w.erase_unchecked(i);
}

/// Vector epilogue: one dense pass over the positions.
template <typename WVec, typename TVec, typename MObj, typename Accum>
void write_vector(WVec& w, const TVec& T, const OutputDescriptor<MObj>& out,
                  Accum accum) {
  for (IndexType i = 0; i < w.size(); ++i)
    write_vector_slot(w, T, out, accum, i);
}

/// CpuPar vector epilogue: the same per-slot resolution over 64-aligned
/// fixed chunks (w's ScalarType may be bool — the alignment keeps chunks off
/// each other's bit-storage words). Bit-identical to write_vector at any
/// worker count.
template <typename WVec, typename TVec, typename MObj, typename Accum>
void write_vector_par(WVec& w, const TVec& T,
                      const OutputDescriptor<MObj>& out, Accum accum) {
  cpupar_backend::parallel_ranges(
      w.size(), cpupar_backend::kVectorChunk,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
          write_vector_slot(w, T, out, accum, i);
      });
}

// ===========================================================================
// Device-side mask plumbing
// ===========================================================================

/// Presence flags (post complement/structural interpretation) for a vector
/// mask, as a device bitmap.
template <typename MObj>
gpu_sim::device_vector<std::uint8_t> vector_mask_flags(
    gpu_sim::Context& ctx, const MaskDesc<MObj>& m, IndexType n) {
  gpu_sim::device_vector<std::uint8_t> flags(n, ctx);
  if constexpr (std::is_same_v<MObj, EmptyMaskObj>) {
    gpu_sim::fill(flags, std::uint8_t{1});
  } else {
    if (m.mask == nullptr) {
      gpu_sim::fill(flags, std::uint8_t{1});
      return flags;
    }
    const std::uint8_t* pres = m.mask->present().data();
    const auto* vals = m.mask->values().data();
    std::uint8_t* out = flags.data();
    const bool structural = m.structural;
    const bool complement = m.complement;
    ctx.launch_n(n, gpu_sim::LaunchStats{n, n * 2, n},
                 [=](std::size_t i) {
                   bool a = pres[i] != 0 &&
                            (structural || static_cast<bool>(vals[i]));
                   out[i] = static_cast<std::uint8_t>(complement ? !a : a);
                 });
  }
  return flags;
}

/// Device-side matrix mask probe: allows(i, j) via binary search into the
/// mask's CSR. Copyable into kernels.
template <typename MV>
struct MatrixMaskProbe {
  const IndexType* offs = nullptr;
  const IndexType* cols = nullptr;
  const MV* vals = nullptr;
  bool structural = false;
  bool complement = false;
  bool unmasked = true;

  bool operator()(IndexType i, IndexType j) const {
    if (unmasked) return true;
    bool present = false;
    IndexType lo = offs[i], hi = offs[i + 1];
    while (lo < hi) {
      const IndexType mid = lo + (hi - lo) / 2;
      if (cols[mid] < j)
        lo = mid + 1;
      else
        hi = mid;
    }
    if (lo < offs[i + 1] && cols[lo] == j)
      present = structural || static_cast<bool>(vals[lo]);
    return complement ? !present : present;
  }
};

template <typename MObj>
auto matrix_mask_probe(const MaskDesc<MObj>& m) {
  if constexpr (std::is_same_v<MObj, EmptyMaskObj>) {
    (void)m;
    return MatrixMaskProbe<std::uint8_t>{};  // unmasked
  } else {
    using MV = typename MObj::ScalarType;
    MatrixMaskProbe<MV> probe;
    if (m.mask == nullptr) return probe;
    probe.offs = m.mask->row_offsets().data();
    probe.cols = m.mask->col_indices().data();
    probe.vals = m.mask->values().data();
    probe.structural = m.structural;
    probe.complement = m.complement;
    probe.unmasked = false;
    return probe;
  }
}

/// Flattened row-major keys (row * ncols + col) for every stored entry of a
/// device CSR matrix.
template <typename AMat>
gpu_sim::device_vector<IndexType> coo_keys(const AMat& A) {
  gpu_sim::Context& ctx = A.context();
  const IndexType n = A.nrows();
  const IndexType nnz = A.nvals();
  gpu_sim::device_vector<IndexType> keys(nnz, ctx);
  const IndexType* offs = A.row_offsets().data();
  const IndexType* cols = A.col_indices().data();
  IndexType* out = keys.data();
  const IndexType ncols = A.ncols();
  // Row-parallel expansion of the offsets array.
  ctx.launch_n(n,
               gpu_sim::LaunchStats{nnz + n, (n + nnz) * sizeof(IndexType),
                                    nnz * sizeof(IndexType)},
               [=](std::size_t i) {
                 for (IndexType k = offs[i]; k < offs[i + 1]; ++k)
                   out[k] = static_cast<IndexType>(i) * ncols + cols[k];
               });
  return keys;
}

// ===========================================================================
// Device epilogues
// ===========================================================================

/// Vector epilogue as one fused elementwise kernel: mask flags, accumulate
/// merge and replace handling in a single pass over the dense storage.
template <typename WVec, typename TT, typename MObj, typename Accum>
void write_vector(WVec& w, const gpu_sim::device_vector<TT>& t_vals,
                  const gpu_sim::device_vector<std::uint8_t>& t_pres,
                  const OutputDescriptor<MObj>& out, Accum accum) {
  using WT = typename WVec::ScalarType;
  gpu_sim::Context& ctx = w.context();
  const IndexType n = w.size();
  auto flags = vector_mask_flags(ctx, out.mask, n);
  WT* wv = w.values().data();
  std::uint8_t* wp = w.present().data();
  const TT* tv = t_vals.data();
  const std::uint8_t* tp = t_pres.data();
  const std::uint8_t* f = flags.data();
  const bool replace = out.replace;
  const Accum acc_op = accum;
  ctx.launch_n(
      n,
      gpu_sim::LaunchStats{3 * n, n * (sizeof(WT) + sizeof(TT) + 3),
                           n * (sizeof(WT) + 1)},
      [=](std::size_t i) {
        const auto entry =
            f[i] ? write_rules::resolve_allowed(acc_op, wp[i] != 0, wv[i],
                                                tp[i] != 0, tv[i])
                 : write_rules::resolve_disallowed(replace, wp[i] != 0,
                                                   wv[i]);
        wv[i] = entry.present ? entry.value : WT{};
        wp[i] = entry.present ? 1 : 0;
      });
}

/// Matrix epilogue: serial merge of C's and T̃'s sorted COO streams under
/// the mask probe (merge-path kernel in real CUDA).
template <typename CMat, typename TT, typename MObj, typename Accum>
void write_matrix(CMat& C, const gpu_sim::device_vector<IndexType>& t_keys,
                  const gpu_sim::device_vector<TT>& t_vals,
                  const OutputDescriptor<MObj>& out, Accum accum) {
  using CT = typename CMat::ScalarType;
  gpu_sim::Context& ctx = C.context();
  auto c_keys = coo_keys(C);
  gpu_sim::device_vector<CT> c_vals = C.values();  // d2d snapshot

  const IndexType nc = c_keys.size();
  const IndexType nt = t_keys.size();
  gpu_sim::device_vector<IndexType> out_keys(nc + nt, ctx);
  gpu_sim::device_vector<CT> out_vals(nc + nt, ctx);

  auto probe = matrix_mask_probe(out.mask);
  const bool replace = out.replace;
  const IndexType ncols = C.ncols();
  const IndexType* ck = c_keys.data();
  const CT* cv = c_vals.data();
  const IndexType* tk = t_keys.data();
  const TT* tv = t_vals.data();
  IndexType* ok = out_keys.data();
  CT* ov = out_vals.data();
  IndexType kept = 0;

  const std::uint64_t read = (nc + nt) * (sizeof(IndexType) + sizeof(CT));
  const std::uint64_t written =
      (nc + nt) * (sizeof(IndexType) + sizeof(CT));
  ctx.launch(gpu_sim::Dim3{1}, gpu_sim::Dim3{1},
             gpu_sim::LaunchStats{2 * (nc + nt), read, written},
             [&](const gpu_sim::ThreadId&) {
               IndexType ci = 0, ti = 0;
               while (ci < nc || ti < nt) {
                 bool has_c = false, has_t = false;
                 IndexType key;
                 if (ci < nc && ti < nt) {
                   if (ck[ci] < tk[ti]) {
                     key = ck[ci];
                     has_c = true;
                   } else if (tk[ti] < ck[ci]) {
                     key = tk[ti];
                     has_t = true;
                   } else {
                     key = ck[ci];
                     has_c = has_t = true;
                   }
                 } else if (ci < nc) {
                   key = ck[ci];
                   has_c = true;
                 } else {
                   key = tk[ti];
                   has_t = true;
                 }
                 const CT cval = has_c ? cv[ci] : CT{};
                 const TT tval = has_t ? tv[ti] : TT{};
                 if (has_c) ++ci;
                 if (has_t) ++ti;

                 const IndexType i = key / ncols;
                 const IndexType j = key % ncols;
                 const auto entry =
                     probe(i, j)
                         ? write_rules::resolve_allowed(accum, has_c, cval,
                                                        has_t, tval)
                         : write_rules::resolve_disallowed(replace, has_c,
                                                           cval);
                 if (entry.present) {
                   ok[kept] = key;
                   ov[kept++] = entry.value;
                 }
               }
             });

  out_keys.resize(kept);
  out_vals.resize(kept);
  C.load_from_sorted_keys(out_keys, out_vals);
}

}  // namespace grb::pipeline
