#pragma once

/// @file shard_plan.hpp
/// Row-block shard planner for multi-device graphs. Given a CSR row-offset
/// array, it cuts the row range into N contiguous blocks balancing nnz per
/// block (the work-proportional quantity for mxv/vxm), and annotates each
/// block with the column span its rows reference — the exact slice of the
/// input vector a sharded mxv must broadcast to that shard's context (the
/// halo). Shard *count* comes from the per-device arena budget: enough
/// shards that each shard's CSR+CSC footprint fits one device, clamped to
/// the placement width; GBTL_SHARDS pins it for tests/CI the same way
/// GBTL_SPGEMM_MODE pins the SpGEMM strategy.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <vector>

namespace sparse {

/// One contiguous row block of the partition. `col_begin`/`col_end` bound
/// the columns its rows reference (half-open; both 0 for an empty shard) —
/// the halo slice of the mxv input vector.
struct Shard {
  std::size_t row_begin = 0;
  std::size_t row_end = 0;  ///< half-open
  std::uint64_t nnz = 0;
  std::size_t col_begin = 0;
  std::size_t col_end = 0;  ///< half-open

  std::size_t rows() const { return row_end - row_begin; }
  std::size_t halo_cols() const { return col_end - col_begin; }
};

struct ShardPlan {
  std::vector<Shard> shards;

  std::size_t count() const { return shards.size(); }
  bool single() const { return shards.size() <= 1; }
};

/// Process-wide shard-count pin, seeded once from GBTL_SHARDS (0 = let the
/// budget heuristic decide) so CI can force a fan-out without a code change.
inline std::size_t& shard_count_override() {
  static std::size_t count = [] {
    if (const char* env = std::getenv("GBTL_SHARDS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{0};
  }();
  return count;
}

/// RAII guard for tests/benches that pin the shard count and must restore it.
class ShardCountGuard {
 public:
  explicit ShardCountGuard(std::size_t count)
      : saved_(shard_count_override()) {
    shard_count_override() = count;
  }
  ~ShardCountGuard() { shard_count_override() = saved_; }
  ShardCountGuard(const ShardCountGuard&) = delete;
  ShardCountGuard& operator=(const ShardCountGuard&) = delete;

 private:
  std::size_t saved_;
};

/// Pick how many row blocks to cut a graph into: the GBTL_SHARDS override
/// verbatim when set; otherwise the smallest count whose per-shard share of
/// @p estimated_device_bytes fits @p per_device_budget, clamped to
/// [1, device_count]. A graph too big even for device_count shards still
/// returns device_count — best effort; the shard build surfaces
/// DeviceBadAlloc if the budget truly cannot hold it.
inline std::size_t choose_shard_count(std::uint64_t estimated_device_bytes,
                                      std::size_t device_count,
                                      std::uint64_t per_device_budget) {
  if (const std::size_t pin = shard_count_override(); pin > 0) return pin;
  if (device_count <= 1) return 1;
  if (per_device_budget == 0) return device_count;
  const std::uint64_t need =
      (estimated_device_bytes + per_device_budget - 1) / per_device_budget;
  return std::clamp<std::size_t>(static_cast<std::size_t>(need), 1,
                                 device_count);
}

/// Cut [0, nrows) into @p shard_count contiguous row blocks with balanced
/// nnz: block s ends at the first row where the cumulative nnz reaches
/// s+1 shares of the total (binary search over the monotone row_offsets),
/// so every cut is within one row's degree of the ideal split. Column spans
/// are left zeroed — annotate_col_spans() fills them when the planner has
/// column indices at hand. An all-empty matrix degrades to an even row
/// split so no shard sees a degenerate [0, 0) row range unless nrows <
/// shard_count.
template <typename Index>
ShardPlan plan_shards(const Index* row_offsets, std::size_t nrows,
                      std::size_t shard_count) {
  ShardPlan plan;
  if (shard_count == 0) shard_count = 1;
  const std::uint64_t total =
      nrows > 0 ? static_cast<std::uint64_t>(row_offsets[nrows]) : 0;
  plan.shards.reserve(shard_count);
  std::size_t row = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    Shard sh;
    sh.row_begin = row;
    std::size_t end;
    if (s + 1 == shard_count) {
      end = nrows;
    } else if (total == 0) {
      end = std::min(nrows, ((s + 1) * nrows) / shard_count);
    } else {
      // First row index whose cumulative nnz covers (s+1)/count of total.
      const std::uint64_t target = ((s + 1) * total) / shard_count;
      const Index* lo = row_offsets + row;
      const Index* hi = row_offsets + nrows;
      const Index* it = std::lower_bound(
          lo, hi + 1, target, [](Index off, std::uint64_t t) {
            return static_cast<std::uint64_t>(off) < t;
          });
      end = static_cast<std::size_t>(it - row_offsets);
      end = std::min(std::max(end, row), nrows);
    }
    sh.row_end = end;
    sh.nnz = static_cast<std::uint64_t>(row_offsets[end]) -
             static_cast<std::uint64_t>(row_offsets[row]);
    plan.shards.push_back(sh);
    row = end;
  }
  return plan;
}

/// Fill each shard's [col_begin, col_end) with the min/max+1 column its rows
/// reference — the halo slice of the mxv input vector. Empty shards keep
/// [0, 0).
template <typename Index>
void annotate_col_spans(ShardPlan& plan, const Index* row_offsets,
                        const Index* cols) {
  for (Shard& sh : plan.shards) {
    if (sh.nnz == 0) {
      sh.col_begin = sh.col_end = 0;
      continue;
    }
    const std::size_t k0 = static_cast<std::size_t>(row_offsets[sh.row_begin]);
    const std::size_t k1 = static_cast<std::size_t>(row_offsets[sh.row_end]);
    Index lo = cols[k0], hi = cols[k0];
    for (std::size_t k = k0 + 1; k < k1; ++k) {
      lo = std::min(lo, cols[k]);
      hi = std::max(hi, cols[k]);
    }
    sh.col_begin = static_cast<std::size_t>(lo);
    sh.col_end = static_cast<std::size_t>(hi) + 1;
  }
}

}  // namespace sparse
