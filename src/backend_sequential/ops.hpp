#pragma once

/// @file backend_sequential/ops.hpp
/// Sequential implementations of every GraphBLAS operation, written for
/// clarity: these are the semantic oracle the GPU backend is tested against.
///
/// Every operation computes its raw result T̃ and hands it, together with
/// the frontend's OutputDescriptor, to the shared epilogue executors in
/// sparse/output_pipeline.hpp — accumulate/mask/replace handling lives
/// there (and in gbtl/write_rules.hpp), not in the per-op bodies.

#include <algorithm>
#include <optional>
#include <type_traits>
#include <vector>

#include "backend_sequential/matrix.hpp"
#include "backend_sequential/vector.hpp"
#include "gbtl/algebra.hpp"
#include "gbtl/mask.hpp"
#include "gbtl/types.hpp"
#include "gbtl/write_rules.hpp"
#include "sparse/output_pipeline.hpp"

namespace grb::seq_backend {

namespace detail {

/// Materialized transpose (helper for TransposeView lowering and the
/// dot-product mxm path).
template <typename T>
Matrix<T> transposed(const Matrix<T>& A) {
  Matrix<T> At(A.ncols(), A.nrows());
  for (IndexType i = 0; i < A.nrows(); ++i)
    for (const auto& [j, v] : A.row(i)) At.set_element(j, i, v);
  return At;
}

}  // namespace detail

// ===========================================================================
// mxm — matrix multiply over a semiring
// ===========================================================================

/// Unmasked/complement path: Gustavson row-by-row with a dense accumulator.
/// Non-complemented masked path: dot products evaluated only at mask-allowed
/// positions (the "masked early exit" the paper's triangle-count relies on).
template <typename CT, typename MObj, typename Accum, typename SR,
          typename AT, typename BT>
void mxm(Matrix<CT>& C, const OutputDescriptor<MObj>& out, Accum accum, SR sr,
         const Matrix<AT>& A, const Matrix<BT>& B) {
  using ZT = typename SR::result_type;
  Matrix<ZT> T(C.nrows(), C.ncols());

  constexpr bool kHasMaskObj = !std::is_same_v<MObj, EmptyMaskObj>;
  bool used_dot_path = false;
  if constexpr (kHasMaskObj) {
    if (out.mask.mask != nullptr && !out.mask.complement) {
      // Compute only where the mask allows: T(i,j) = A(i,:) dot B(:,j).
      const Matrix<BT> Bt = detail::transposed(B);
      for (IndexType i = 0; i < C.nrows(); ++i) {
        typename Matrix<ZT>::Row trow;
        for (const auto& [j, mv] : out.mask.mask->row(i)) {
          if (!out.mask.structural && !write_rules::truthy(mv)) continue;
          const auto& arow = A.row(i);
          const auto& bcol = Bt.row(j);
          std::size_t ai = 0, bi = 0;
          ZT acc = sr.zero();
          bool any = false;
          while (ai < arow.size() && bi < bcol.size()) {
            if (arow[ai].first < bcol[bi].first) {
              ++ai;
            } else if (bcol[bi].first < arow[ai].first) {
              ++bi;
            } else {
              acc = sr.add(acc, sr.mult(arow[ai].second, bcol[bi].second));
              any = true;
              ++ai, ++bi;
            }
          }
          if (any) trow.emplace_back(j, acc);
        }
        T.set_row(i, std::move(trow));
      }
      used_dot_path = true;
    }
  }

  if (!used_dot_path) {
    // Gustavson: T(i,:) = sum_k A(i,k) * B(k,:).
    std::vector<ZT> acc(C.ncols(), sr.zero());
    std::vector<std::uint8_t> occupied(C.ncols(), 0);
    std::vector<IndexType> touched;
    for (IndexType i = 0; i < A.nrows(); ++i) {
      touched.clear();
      for (const auto& [k, av] : A.row(i)) {
        for (const auto& [j, bv] : B.row(k)) {
          const ZT prod = sr.mult(av, bv);
          if (!occupied[j]) {
            occupied[j] = 1;
            acc[j] = prod;
            touched.push_back(j);
          } else {
            acc[j] = sr.add(acc[j], prod);
          }
        }
      }
      std::sort(touched.begin(), touched.end());
      typename Matrix<ZT>::Row trow;
      trow.reserve(touched.size());
      for (IndexType j : touched) {
        trow.emplace_back(j, acc[j]);
        occupied[j] = 0;
      }
      T.set_row(i, std::move(trow));
    }
  }

  pipeline::write_matrix(C, T, out, accum);
}

// ===========================================================================
// mxv / vxm
// ===========================================================================

template <typename WT, typename MObj, typename Accum, typename SR,
          typename AT, typename UT>
void mxv(Vector<WT>& w, const OutputDescriptor<MObj>& out, Accum accum, SR sr,
         const Matrix<AT>& A, const Vector<UT>& u) {
  using ZT = typename SR::result_type;
  Vector<ZT> T(w.size());
  for (IndexType i = 0; i < A.nrows(); ++i) {
    ZT acc = sr.zero();
    bool any = false;
    for (const auto& [k, av] : A.row(i)) {
      if (u.present_unchecked(k)) {
        acc = sr.add(acc, sr.mult(av, u.value_unchecked(k)));
        any = true;
      }
    }
    if (any) T.set_unchecked(i, acc);
  }
  pipeline::write_vector(w, T, out, accum);
}

template <typename WT, typename MObj, typename Accum, typename SR,
          typename UT, typename AT>
void vxm(Vector<WT>& w, const OutputDescriptor<MObj>& out, Accum accum, SR sr,
         const Vector<UT>& u, const Matrix<AT>& A) {
  using ZT = typename SR::result_type;
  Vector<ZT> T(w.size());
  std::vector<std::uint8_t> occupied(w.size(), 0);
  for (IndexType k = 0; k < A.nrows(); ++k) {
    if (!u.present_unchecked(k)) continue;
    const UT uv = u.value_unchecked(k);
    for (const auto& [j, av] : A.row(k)) {
      const ZT prod = sr.mult(uv, av);
      if (!occupied[j]) {
        occupied[j] = 1;
        T.set_unchecked(j, prod);
      } else {
        T.set_unchecked(j, sr.add(T.value_unchecked(j), prod));
      }
    }
  }
  pipeline::write_vector(w, T, out, accum);
}

// ===========================================================================
// eWiseAdd / eWiseMult
// ===========================================================================

template <typename WT, typename MObj, typename Accum, typename Op,
          typename UT, typename VT>
void ewise_add_vec(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                   Accum accum, Op op, const Vector<UT>& u,
                   const Vector<VT>& v) {
  using ZT = std::common_type_t<UT, VT>;
  Vector<ZT> T(w.size());
  for (IndexType i = 0; i < w.size(); ++i) {
    const bool hu = u.present_unchecked(i), hv = v.present_unchecked(i);
    if (hu && hv)
      T.set_unchecked(i, static_cast<ZT>(op(
                             static_cast<ZT>(u.value_unchecked(i)),
                             static_cast<ZT>(v.value_unchecked(i)))));
    else if (hu)
      T.set_unchecked(i, static_cast<ZT>(u.value_unchecked(i)));
    else if (hv)
      T.set_unchecked(i, static_cast<ZT>(v.value_unchecked(i)));
  }
  pipeline::write_vector(w, T, out, accum);
}

template <typename WT, typename MObj, typename Accum, typename Op,
          typename UT, typename VT>
void ewise_mult_vec(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                    Accum accum, Op op, const Vector<UT>& u,
                    const Vector<VT>& v) {
  using ZT = std::common_type_t<UT, VT>;
  Vector<ZT> T(w.size());
  for (IndexType i = 0; i < w.size(); ++i) {
    if (u.present_unchecked(i) && v.present_unchecked(i))
      T.set_unchecked(i, static_cast<ZT>(op(
                             static_cast<ZT>(u.value_unchecked(i)),
                             static_cast<ZT>(v.value_unchecked(i)))));
  }
  pipeline::write_vector(w, T, out, accum);
}

template <typename CT, typename MObj, typename Accum, typename Op,
          typename AT, typename BT>
void ewise_add_mat(Matrix<CT>& C, const OutputDescriptor<MObj>& out,
                   Accum accum, Op op, const Matrix<AT>& A,
                   const Matrix<BT>& B) {
  using ZT = std::common_type_t<AT, BT>;
  Matrix<ZT> T(C.nrows(), C.ncols());
  for (IndexType i = 0; i < C.nrows(); ++i) {
    const auto& ar = A.row(i);
    const auto& br = B.row(i);
    typename Matrix<ZT>::Row merged;
    merged.reserve(ar.size() + br.size());
    std::size_t ai = 0, bi = 0;
    while (ai < ar.size() || bi < br.size()) {
      if (bi >= br.size() || (ai < ar.size() && ar[ai].first < br[bi].first)) {
        merged.emplace_back(ar[ai].first, static_cast<ZT>(ar[ai].second));
        ++ai;
      } else if (ai >= ar.size() || br[bi].first < ar[ai].first) {
        merged.emplace_back(br[bi].first, static_cast<ZT>(br[bi].second));
        ++bi;
      } else {
        merged.emplace_back(
            ar[ai].first, static_cast<ZT>(op(static_cast<ZT>(ar[ai].second),
                                             static_cast<ZT>(br[bi].second))));
        ++ai, ++bi;
      }
    }
    T.set_row(i, std::move(merged));
  }
  pipeline::write_matrix(C, T, out, accum);
}

template <typename CT, typename MObj, typename Accum, typename Op,
          typename AT, typename BT>
void ewise_mult_mat(Matrix<CT>& C, const OutputDescriptor<MObj>& out,
                    Accum accum, Op op, const Matrix<AT>& A,
                    const Matrix<BT>& B) {
  using ZT = std::common_type_t<AT, BT>;
  Matrix<ZT> T(C.nrows(), C.ncols());
  for (IndexType i = 0; i < C.nrows(); ++i) {
    const auto& ar = A.row(i);
    const auto& br = B.row(i);
    typename Matrix<ZT>::Row merged;
    std::size_t ai = 0, bi = 0;
    while (ai < ar.size() && bi < br.size()) {
      if (ar[ai].first < br[bi].first) {
        ++ai;
      } else if (br[bi].first < ar[ai].first) {
        ++bi;
      } else {
        merged.emplace_back(
            ar[ai].first, static_cast<ZT>(op(static_cast<ZT>(ar[ai].second),
                                             static_cast<ZT>(br[bi].second))));
        ++ai, ++bi;
      }
    }
    T.set_row(i, std::move(merged));
  }
  pipeline::write_matrix(C, T, out, accum);
}

// ===========================================================================
// apply
// ===========================================================================

template <typename WT, typename MObj, typename Accum, typename UnaryOp,
          typename UT>
void apply_vec(Vector<WT>& w, const OutputDescriptor<MObj>& out, Accum accum,
               UnaryOp f, const Vector<UT>& u) {
  Vector<WT> T(w.size());
  for (IndexType i = 0; i < u.size(); ++i)
    if (u.present_unchecked(i))
      T.set_unchecked(i, static_cast<WT>(f(u.value_unchecked(i))));
  pipeline::write_vector(w, T, out, accum);
}

template <typename CT, typename MObj, typename Accum, typename UnaryOp,
          typename AT>
void apply_mat(Matrix<CT>& C, const OutputDescriptor<MObj>& out, Accum accum,
               UnaryOp f, const Matrix<AT>& A) {
  Matrix<CT> T(C.nrows(), C.ncols());
  for (IndexType i = 0; i < A.nrows(); ++i) {
    typename Matrix<CT>::Row trow;
    trow.reserve(A.row(i).size());
    for (const auto& [j, v] : A.row(i))
      trow.emplace_back(j, static_cast<CT>(f(v)));
    T.set_row(i, std::move(trow));
  }
  pipeline::write_matrix(C, T, out, accum);
}

/// apply with an index-aware operator: T̃[i] = f(i, u[i]) — the GraphBLAS
/// IndexUnaryOp extension (used by BFS parent tracking, k-core peeling...).
template <typename WT, typename MObj, typename Accum, typename IdxOp,
          typename UT>
void apply_indexed_vec(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                       Accum accum, IdxOp f, const Vector<UT>& u) {
  Vector<WT> T(w.size());
  for (IndexType i = 0; i < u.size(); ++i)
    if (u.present_unchecked(i))
      T.set_unchecked(i, static_cast<WT>(f(i, u.value_unchecked(i))));
  pipeline::write_vector(w, T, out, accum);
}

/// Matrix form: T̃(i,j) = f(i, j, A(i,j)).
template <typename CT, typename MObj, typename Accum, typename IdxOp,
          typename AT>
void apply_indexed_mat(Matrix<CT>& C, const OutputDescriptor<MObj>& out,
                       Accum accum, IdxOp f, const Matrix<AT>& A) {
  Matrix<CT> T(C.nrows(), C.ncols());
  for (IndexType i = 0; i < A.nrows(); ++i) {
    typename Matrix<CT>::Row trow;
    trow.reserve(A.row(i).size());
    for (const auto& [j, v] : A.row(i))
      trow.emplace_back(j, static_cast<CT>(f(i, j, v)));
    T.set_row(i, std::move(trow));
  }
  pipeline::write_matrix(C, T, out, accum);
}

// ===========================================================================
// reduce
// ===========================================================================

/// Row-wise reduction of a matrix into a vector.
template <typename WT, typename MObj, typename Accum, typename Monoid,
          typename AT>
void reduce_mat_to_vec(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                       Accum accum, Monoid monoid, const Matrix<AT>& A) {
  using ZT = typename Monoid::result_type;
  Vector<ZT> T(w.size());
  for (IndexType i = 0; i < A.nrows(); ++i) {
    if (A.row(i).empty()) continue;
    ZT acc = monoid.identity();
    for (const auto& [j, v] : A.row(i)) acc = monoid(acc, static_cast<ZT>(v));
    T.set_unchecked(i, acc);
  }
  pipeline::write_vector(w, T, out, accum);
}

template <typename ST, typename Accum, typename Monoid, typename UT>
void reduce_vec_to_scalar(ST& s, Accum accum, Monoid monoid,
                          const Vector<UT>& u) {
  using ZT = typename Monoid::result_type;
  ZT acc = monoid.identity();
  for (IndexType i = 0; i < u.size(); ++i)
    if (u.present_unchecked(i))
      acc = monoid(acc, static_cast<ZT>(u.value_unchecked(i)));
  if constexpr (std::is_same_v<Accum, NoAccumulate>)
    s = static_cast<ST>(acc);
  else
    s = static_cast<ST>(accum(s, static_cast<ST>(acc)));
}

template <typename ST, typename Accum, typename Monoid, typename AT>
void reduce_mat_to_scalar(ST& s, Accum accum, Monoid monoid,
                          const Matrix<AT>& A) {
  using ZT = typename Monoid::result_type;
  ZT acc = monoid.identity();
  for (IndexType i = 0; i < A.nrows(); ++i)
    for (const auto& [j, v] : A.row(i)) acc = monoid(acc, static_cast<ZT>(v));
  if constexpr (std::is_same_v<Accum, NoAccumulate>)
    s = static_cast<ST>(acc);
  else
    s = static_cast<ST>(accum(s, static_cast<ST>(acc)));
}

// ===========================================================================
// transpose
// ===========================================================================

template <typename CT, typename MObj, typename Accum, typename AT>
void transpose_op(Matrix<CT>& C, const OutputDescriptor<MObj>& out,
                  Accum accum, const Matrix<AT>& A) {
  Matrix<AT> T = detail::transposed(A);
  pipeline::write_matrix(C, T, out, accum);
}

// ===========================================================================
// extract
// ===========================================================================

template <typename WT, typename MObj, typename Accum, typename UT>
void extract_vec(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                 Accum accum, const Vector<UT>& u,
                 const IndexArrayType& indices) {
  Vector<UT> T(w.size());
  for (IndexType k = 0; k < indices.size(); ++k) {
    const IndexType src = indices[k];
    if (src >= u.size())
      throw IndexOutOfBoundsException("extract: source index");
    if (u.present_unchecked(src))
      T.set_unchecked(k, u.value_unchecked(src));
  }
  pipeline::write_vector(w, T, out, accum);
}

template <typename CT, typename MObj, typename Accum, typename AT>
void extract_mat(Matrix<CT>& C, const OutputDescriptor<MObj>& out,
                 Accum accum, const Matrix<AT>& A,
                 const IndexArrayType& row_indices,
                 const IndexArrayType& col_indices) {
  Matrix<AT> T(C.nrows(), C.ncols());
  // Position of each selected source column in the output (a source column
  // may be selected multiple times).
  std::vector<std::vector<IndexType>> col_positions(A.ncols());
  for (IndexType k = 0; k < col_indices.size(); ++k) {
    if (col_indices[k] >= A.ncols())
      throw IndexOutOfBoundsException("extract: column index");
    col_positions[col_indices[k]].push_back(k);
  }
  for (IndexType k = 0; k < row_indices.size(); ++k) {
    const IndexType src = row_indices[k];
    if (src >= A.nrows())
      throw IndexOutOfBoundsException("extract: row index");
    typename Matrix<AT>::Row trow;
    for (const auto& [j, v] : A.row(src))
      for (IndexType dst_col : col_positions[j]) trow.emplace_back(dst_col, v);
    std::sort(trow.begin(), trow.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    T.set_row(k, std::move(trow));
  }
  pipeline::write_matrix(C, T, out, accum);
}

/// Column extract: w = A(row_indices, col).
template <typename WT, typename MObj, typename Accum, typename AT>
void extract_col(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                 Accum accum, const Matrix<AT>& A,
                 const IndexArrayType& row_indices, IndexType col) {
  if (col >= A.ncols())
    throw IndexOutOfBoundsException("extract: column index");
  Vector<AT> T(w.size());
  for (IndexType k = 0; k < row_indices.size(); ++k) {
    if (row_indices[k] >= A.nrows())
      throw IndexOutOfBoundsException("extract: row index");
    const AT* v = A.find(row_indices[k], col);
    if (v != nullptr) T.set_unchecked(k, *v);
  }
  pipeline::write_vector(w, T, out, accum);
}

// ===========================================================================
// assign
// ===========================================================================

template <typename WT, typename MObj, typename Accum, typename UT>
void assign_vec(Vector<WT>& w, const OutputDescriptor<MObj>& out, Accum accum,
                const Vector<UT>& u, const IndexArrayType& indices) {
  // Z starts as a copy of w; the subrange is overwritten (or accumulated).
  // The accumulator applies during this pre-merge, so the epilogue runs
  // without one.
  Vector<WT> T = w;
  constexpr bool kAccum = !std::is_same_v<Accum, NoAccumulate>;
  for (IndexType k = 0; k < indices.size(); ++k) {
    const IndexType dst = indices[k];
    if (dst >= w.size())
      throw IndexOutOfBoundsException("assign: destination index");
    if (u.present_unchecked(k)) {
      const WT uv = static_cast<WT>(u.value_unchecked(k));
      if (kAccum && T.present_unchecked(dst)) {
        if constexpr (kAccum)
          T.set_unchecked(dst, static_cast<WT>(
                                   accum(T.value_unchecked(dst), uv)));
      } else {
        T.set_unchecked(dst, uv);
      }
    } else if (!kAccum) {
      T.erase_unchecked(dst);
    }
  }
  pipeline::write_vector(w, T, out, NoAccumulate{});
}

template <typename WT, typename MObj, typename Accum>
void assign_vec_constant(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                         Accum accum, const WT& value,
                         const IndexArrayType& indices) {
  Vector<WT> T = w;
  constexpr bool kAccum = !std::is_same_v<Accum, NoAccumulate>;
  for (IndexType dst : indices) {
    if (dst >= w.size())
      throw IndexOutOfBoundsException("assign: destination index");
    if (kAccum && T.present_unchecked(dst)) {
      if constexpr (kAccum)
        T.set_unchecked(dst,
                        static_cast<WT>(accum(T.value_unchecked(dst), value)));
    } else {
      T.set_unchecked(dst, value);
    }
  }
  pipeline::write_vector(w, T, out, NoAccumulate{});
}

template <typename CT, typename MObj, typename Accum, typename AT>
void assign_mat(Matrix<CT>& C, const OutputDescriptor<MObj>& out, Accum accum,
                const Matrix<AT>& A, const IndexArrayType& row_indices,
                const IndexArrayType& col_indices) {
  constexpr bool kAccum = !std::is_same_v<Accum, NoAccumulate>;
  Matrix<CT> T = C;
  // Without accumulate the assigned subgrid is fully replaced: clear the
  // targeted positions first.
  if (!kAccum) {
    for (IndexType ri : row_indices)
      for (IndexType ci : col_indices) {
        if (ri >= C.nrows() || ci >= C.ncols())
          throw IndexOutOfBoundsException("assign: destination index");
        T.remove_element(ri, ci);
      }
  }
  for (IndexType ai = 0; ai < row_indices.size(); ++ai) {
    const IndexType dst_row = row_indices[ai];
    if (dst_row >= C.nrows())
      throw IndexOutOfBoundsException("assign: destination row");
    for (const auto& [aj, v] : A.row(ai)) {
      if (aj >= col_indices.size()) continue;
      const IndexType dst_col = col_indices[aj];
      if (dst_col >= C.ncols())
        throw IndexOutOfBoundsException("assign: destination column");
      const CT cv = static_cast<CT>(v);
      if constexpr (kAccum) {
        const CT* old = T.find(dst_row, dst_col);
        if (old != nullptr)
          T.set_element(dst_row, dst_col, static_cast<CT>(accum(*old, cv)));
        else
          T.set_element(dst_row, dst_col, cv);
      } else {
        T.set_element(dst_row, dst_col, cv);
      }
    }
  }
  pipeline::write_matrix(C, T, out, NoAccumulate{});
}

template <typename CT, typename MObj, typename Accum>
void assign_mat_constant(Matrix<CT>& C, const OutputDescriptor<MObj>& out,
                         Accum accum, const CT& value,
                         const IndexArrayType& row_indices,
                         const IndexArrayType& col_indices) {
  constexpr bool kAccum = !std::is_same_v<Accum, NoAccumulate>;
  Matrix<CT> T = C;
  for (IndexType ri : row_indices) {
    for (IndexType ci : col_indices) {
      if (ri >= C.nrows() || ci >= C.ncols())
        throw IndexOutOfBoundsException("assign: destination index");
      if constexpr (kAccum) {
        const CT* old = T.find(ri, ci);
        if (old != nullptr)
          T.set_element(ri, ci, static_cast<CT>(accum(*old, value)));
        else
          T.set_element(ri, ci, value);
      } else {
        T.set_element(ri, ci, value);
      }
    }
  }
  pipeline::write_matrix(C, T, out, NoAccumulate{});
}

// ===========================================================================
// kronecker
// ===========================================================================

template <typename CT, typename MObj, typename Accum, typename Op,
          typename AT, typename BT>
void kronecker(Matrix<CT>& C, const OutputDescriptor<MObj>& out, Accum accum,
               Op op, const Matrix<AT>& A, const Matrix<BT>& B) {
  using ZT = std::common_type_t<AT, BT>;
  Matrix<ZT> T(C.nrows(), C.ncols());
  for (IndexType ia = 0; ia < A.nrows(); ++ia) {
    for (IndexType ib = 0; ib < B.nrows(); ++ib) {
      typename Matrix<ZT>::Row trow;
      for (const auto& [ja, va] : A.row(ia))
        for (const auto& [jb, vb] : B.row(ib))
          trow.emplace_back(ja * B.ncols() + jb,
                            static_cast<ZT>(op(static_cast<ZT>(va),
                                               static_cast<ZT>(vb))));
      std::sort(trow.begin(), trow.end(), [](const auto& a, const auto& b) {
        return a.first < b.first;
      });
      T.set_row(ia * B.nrows() + ib, std::move(trow));
    }
  }
  pipeline::write_matrix(C, T, out, accum);
}

// ===========================================================================
// select (GBTL/SuiteSparse extension): keep entries satisfying a predicate
// ===========================================================================

template <typename CT, typename MObj, typename Accum, typename Pred,
          typename AT>
void select_mat(Matrix<CT>& C, const OutputDescriptor<MObj>& out, Accum accum,
                Pred pred, const Matrix<AT>& A) {
  Matrix<AT> T(C.nrows(), C.ncols());
  for (IndexType i = 0; i < A.nrows(); ++i) {
    typename Matrix<AT>::Row trow;
    for (const auto& [j, v] : A.row(i))
      if (pred(i, j, v)) trow.emplace_back(j, v);
    T.set_row(i, std::move(trow));
  }
  pipeline::write_matrix(C, T, out, accum);
}

template <typename WT, typename MObj, typename Accum, typename Pred,
          typename UT>
void select_vec(Vector<WT>& w, const OutputDescriptor<MObj>& out, Accum accum,
                Pred pred, const Vector<UT>& u) {
  Vector<UT> T(w.size());
  for (IndexType i = 0; i < u.size(); ++i)
    if (u.present_unchecked(i) && pred(i, u.value_unchecked(i)))
      T.set_unchecked(i, u.value_unchecked(i));
  pipeline::write_vector(w, T, out, accum);
}

}  // namespace grb::seq_backend
