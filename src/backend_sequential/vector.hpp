#pragma once

/// @file backend_sequential/vector.hpp
/// Sequential-backend sparse vector stored densely: a value array plus a
/// presence bitmap. GraphBLAS vectors flip between sparse and dense over an
/// algorithm's lifetime (BFS frontiers); dense storage with a bitmap gives
/// O(1) access at the memory cost the GPU backend pays anyway.

#include <vector>

#include "gbtl/types.hpp"

namespace grb::seq_backend {

template <typename T>
class Vector {
 public:
  using ScalarType = T;

  Vector() = default;
  explicit Vector(IndexType size)
      : size_(size), values_(size, T{}), present_(size, 0) {
    if (size == 0)
      throw InvalidValueException("vector size must be positive");
  }

  IndexType size() const { return size_; }
  IndexType nvals() const { return nvals_; }

  void clear() {
    std::fill(present_.begin(), present_.end(), 0);
    std::fill(values_.begin(), values_.end(), T{});
    nvals_ = 0;
  }

  /// GrB_Vector_resize semantics.
  void resize(IndexType size) {
    if (size == 0)
      throw InvalidValueException("resize: size must be positive");
    if (size < size_) {
      for (IndexType i = size; i < size_; ++i)
        if (present_[i]) --nvals_;
    }
    values_.resize(size, T{});
    present_.resize(size, 0);
    size_ = size;
  }

  template <typename VIt, typename DupOp>
  void build(const IndexArrayType& indices, VIt values_begin, IndexType n,
             DupOp dup) {
    if (indices.size() < n)
      throw InvalidValueException("build: index array shorter than n");
    clear();
    for (IndexType k = 0; k < n; ++k) {
      const IndexType i = indices[k];
      if (i >= size_)
        throw IndexOutOfBoundsException("build: tuple outside vector size");
      const T v = *(values_begin + static_cast<std::ptrdiff_t>(k));
      if (present_[i]) {
        values_[i] = dup(values_[i], v);
      } else {
        present_[i] = 1;
        values_[i] = v;
        ++nvals_;
      }
    }
  }

  bool has_element(IndexType i) const {
    bounds_check(i);
    return present_[i] != 0;
  }

  T get_element(IndexType i) const {
    bounds_check(i);
    if (!present_[i]) throw NoValueException("vector getElement");
    return values_[i];
  }

  void set_element(IndexType i, const T& v) {
    bounds_check(i);
    if (!present_[i]) {
      present_[i] = 1;
      ++nvals_;
    }
    values_[i] = v;
  }

  void remove_element(IndexType i) {
    bounds_check(i);
    if (present_[i]) {
      present_[i] = 0;
      values_[i] = T{};
      --nvals_;
    }
  }

  void extract_tuples(IndexArrayType& indices, std::vector<T>& values) const {
    indices.clear();
    values.clear();
    indices.reserve(nvals_);
    values.reserve(nvals_);
    for (IndexType i = 0; i < size_; ++i) {
      if (present_[i]) {
        indices.push_back(i);
        values.push_back(values_[i]);
      }
    }
  }

  // --- Raw access for the operation implementations ----------------------
  bool present_unchecked(IndexType i) const { return present_[i] != 0; }
  /// Returned by value: T may be bool, and std::vector<bool> hands out
  /// proxies that must not escape by reference.
  T value_unchecked(IndexType i) const { return values_[i]; }
  void set_unchecked(IndexType i, const T& v) {
    if (!present_[i]) {
      present_[i] = 1;
      ++nvals_;
    }
    values_[i] = v;
  }
  void erase_unchecked(IndexType i) {
    if (present_[i]) {
      present_[i] = 0;
      values_[i] = T{};
      --nvals_;
    }
  }

  friend bool operator==(const Vector& a, const Vector& b) {
    if (a.size_ != b.size_ || a.nvals_ != b.nvals_) return false;
    for (IndexType i = 0; i < a.size_; ++i) {
      if (a.present_[i] != b.present_[i]) return false;
      if (a.present_[i] && !(a.values_[i] == b.values_[i])) return false;
    }
    return true;
  }

 private:
  void bounds_check(IndexType i) const {
    if (i >= size_) throw IndexOutOfBoundsException("vector element access");
  }

  IndexType size_ = 0;
  std::vector<T> values_;
  std::vector<std::uint8_t> present_;
  IndexType nvals_ = 0;
};

}  // namespace grb::seq_backend
