#pragma once

/// @file backend_sequential/vector.hpp
/// Host-backend sparse vector stored densely: a value array plus a presence
/// bitmap. GraphBLAS vectors flip between sparse and dense over an
/// algorithm's lifetime (BFS frontiers); dense storage with a bitmap gives
/// O(1) access at the memory cost the GPU backend pays anyway.
///
/// Shared by the Sequential and CpuPar backends. To keep that sharing safe,
/// the container holds NO derived counters: nvals() scans the bitmap on
/// demand, so concurrent set_unchecked/erase_unchecked calls on *distinct*
/// indices touch only their own slots (the CpuPar backend's row-range
/// parallelism depends on this).

#include <vector>

#include "gbtl/types.hpp"

namespace grb::seq_backend {

template <typename T>
class Vector {
 public:
  using ScalarType = T;

  Vector() = default;
  explicit Vector(IndexType size)
      : size_(size), values_(size, T{}), present_(size, 0) {
    if (size == 0)
      throw InvalidValueException("vector size must be positive");
  }

  IndexType size() const { return size_; }

  /// Stored-element count, computed from the bitmap on demand.
  IndexType nvals() const {
    IndexType n = 0;
    for (IndexType i = 0; i < size_; ++i) n += present_[i];
    return n;
  }

  void clear() {
    std::fill(present_.begin(), present_.end(), 0);
    std::fill(values_.begin(), values_.end(), T{});
  }

  /// GrB_Vector_resize semantics.
  void resize(IndexType size) {
    if (size == 0)
      throw InvalidValueException("resize: size must be positive");
    values_.resize(size, T{});
    present_.resize(size, 0);
    size_ = size;
  }

  template <typename VIt, typename DupOp>
  void build(const IndexArrayType& indices, VIt values_begin, IndexType n,
             DupOp dup) {
    if (indices.size() < n)
      throw InvalidValueException("build: index array shorter than n");
    clear();
    for (IndexType k = 0; k < n; ++k) {
      const IndexType i = indices[k];
      if (i >= size_)
        throw IndexOutOfBoundsException("build: tuple outside vector size");
      const T v = *(values_begin + static_cast<std::ptrdiff_t>(k));
      if (present_[i]) {
        values_[i] = dup(values_[i], v);
      } else {
        present_[i] = 1;
        values_[i] = v;
      }
    }
  }

  bool has_element(IndexType i) const {
    bounds_check(i);
    return present_[i] != 0;
  }

  T get_element(IndexType i) const {
    bounds_check(i);
    if (!present_[i]) throw NoValueException("vector getElement");
    return values_[i];
  }

  void set_element(IndexType i, const T& v) {
    bounds_check(i);
    present_[i] = 1;
    values_[i] = v;
  }

  void remove_element(IndexType i) {
    bounds_check(i);
    if (present_[i]) {
      present_[i] = 0;
      values_[i] = T{};
    }
  }

  void extract_tuples(IndexArrayType& indices, std::vector<T>& values) const {
    indices.clear();
    values.clear();
    for (IndexType i = 0; i < size_; ++i) {
      if (present_[i]) {
        indices.push_back(i);
        values.push_back(values_[i]);
      }
    }
  }

  // --- Raw access for the operation implementations ----------------------
  bool present_unchecked(IndexType i) const { return present_[i] != 0; }
  /// Returned by value: T may be bool, and std::vector<bool> hands out
  /// proxies that must not escape by reference.
  T value_unchecked(IndexType i) const { return values_[i]; }
  void set_unchecked(IndexType i, const T& v) {
    present_[i] = 1;
    values_[i] = v;
  }
  void erase_unchecked(IndexType i) {
    if (present_[i]) {
      present_[i] = 0;
      values_[i] = T{};
    }
  }

  friend bool operator==(const Vector& a, const Vector& b) {
    if (a.size_ != b.size_) return false;
    for (IndexType i = 0; i < a.size_; ++i) {
      if (a.present_[i] != b.present_[i]) return false;
      if (a.present_[i] && !(a.values_[i] == b.values_[i])) return false;
    }
    return true;
  }

 private:
  void bounds_check(IndexType i) const {
    if (i >= size_) throw IndexOutOfBoundsException("vector element access");
  }

  IndexType size_ = 0;
  std::vector<T> values_;
  std::vector<std::uint8_t> present_;
};

}  // namespace grb::seq_backend
