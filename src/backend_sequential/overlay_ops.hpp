#pragma once

/// @file backend_sequential/overlay_ops.hpp
/// Sequential mxv/vxm over (base matrix, replacement-row overlay). The
/// overlay substitutes whole rows, so these are the monolithic loops from
/// ops.hpp with one extra branch per row: a dirty row streams its entries
/// from the overlay arrays instead of the LIL row. Combination order is
/// untouched — per-row zero-seeded fold in ascending column order for mxv,
/// ascending-source scatter with a bare first product for vxm — so results
/// are bit-identical to the same op on a monolithically rebuilt matrix.

#include "backend_sequential/matrix.hpp"
#include "backend_sequential/ops.hpp"
#include "backend_sequential/vector.hpp"
#include "gbtl/overlay.hpp"
#include "gbtl/types.hpp"
#include "gbtl/write_rules.hpp"
#include "sparse/output_pipeline.hpp"

namespace grb::seq_backend {

template <typename WT, typename MObj, typename Accum, typename SR,
          typename AT, typename UT>
void mxv_overlay(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                 Accum accum, SR sr, const Matrix<AT>& A,
                 const MatrixOverlay<AT>& ov, const Vector<UT>& u) {
  using ZT = typename SR::result_type;
  Vector<ZT> T(w.size());
  for (IndexType i = 0; i < A.nrows(); ++i) {
    ZT acc = sr.zero();
    bool any = false;
    const std::size_t slot = ov.find_row(i);
    if (slot < ov.dirty_rows()) {
      for (IndexType k = ov.offsets[slot]; k < ov.offsets[slot + 1]; ++k) {
        const IndexType col = ov.cols[k];
        if (u.present_unchecked(col)) {
          acc = sr.add(acc, sr.mult(ov.vals[k], u.value_unchecked(col)));
          any = true;
        }
      }
    } else {
      for (const auto& [k, av] : A.row(i)) {
        if (u.present_unchecked(k)) {
          acc = sr.add(acc, sr.mult(av, u.value_unchecked(k)));
          any = true;
        }
      }
    }
    if (any) T.set_unchecked(i, acc);
  }
  pipeline::write_vector(w, T, out, accum);
}

template <typename WT, typename MObj, typename Accum, typename SR,
          typename UT, typename AT>
void vxm_overlay(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                 Accum accum, SR sr, const Vector<UT>& u,
                 const Matrix<AT>& A, const MatrixOverlay<AT>& ov) {
  using ZT = typename SR::result_type;
  Vector<ZT> T(w.size());
  std::vector<std::uint8_t> occupied(w.size(), 0);
  auto scatter = [&](const UT uv, IndexType j, const AT av) {
    const ZT prod = sr.mult(uv, av);
    if (!occupied[j]) {
      occupied[j] = 1;
      T.set_unchecked(j, prod);
    } else {
      T.set_unchecked(j, sr.add(T.value_unchecked(j), prod));
    }
  };
  for (IndexType k = 0; k < A.nrows(); ++k) {
    if (!u.present_unchecked(k)) continue;
    const UT uv = u.value_unchecked(k);
    const std::size_t slot = ov.find_row(k);
    if (slot < ov.dirty_rows()) {
      for (IndexType q = ov.offsets[slot]; q < ov.offsets[slot + 1]; ++q)
        scatter(uv, ov.cols[q], ov.vals[q]);
    } else {
      for (const auto& [j, av] : A.row(k)) scatter(uv, j, av);
    }
  }
  pipeline::write_vector(w, T, out, accum);
}

}  // namespace grb::seq_backend
