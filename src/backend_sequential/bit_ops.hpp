#pragma once

/// @file backend_sequential/bit_ops.hpp
/// Host reference kernels over the Bit format (sparse/bitmap.hpp): the
/// word-granularity counterparts of the simulated-device kernels in
/// backend_gpu/bit_ops.hpp, written as the plainest possible loops. These
/// are the oracle the CpuPar word kernels (backend_cpupar/bit_ops.hpp)
/// must match byte for byte, and the reference the property tests compare
/// the GPU path's outputs against after unpacking.
///
/// Conventions shared by all three backends:
///   - presence bit j of a product = some stored entry met a present input,
///   - truth bit j = some *truthy* entry met a *truthy* input (truth ⊆
///     presence, always),
///   - tail bits past the logical length are zero on entry and stay zero.

#include <cstdint>

#include "sparse/bitmap.hpp"

namespace grb::seq_backend {

/// mxv over the row bit view: out bit i = fold of row i of @p a against the
/// input bitmaps. Row-parallel shape (one output bit per row); the truth
/// scan stops at its first hit — presence must still complete the row
/// unless already established.
inline void bit_mxv(const sparse::BitMatrix& a,
                    const sparse::BitVector& upres,
                    const sparse::BitVector& utruth,
                    sparse::BitVector& out_pres,
                    sparse::BitVector& out_truth) {
  const sparse::Index words = sparse::bit_words(a.ncols());
  const std::uint64_t* pw = upres.words();
  const std::uint64_t* tw = utruth.words();
  for (sparse::Index i = 0; i < a.nrows(); ++i) {
    const std::uint64_t* srow = a.structure_row(i);
    const std::uint64_t* trow = a.truth_row(i);
    bool pres = false, truth = false;
    for (sparse::Index w = 0; w < words; ++w) {
      // Empty frontier word: neither plane can hit, matrix row stays unread
      // (the thin-frontier economy the GPU gather's accounting models).
      if (pw[w] == 0) continue;
      if (srow[w] & pw[w]) pres = true;
      if (trow[w] & tw[w]) {
        // A truth hit implies a structure hit in the same word (truth ⊆
        // structure, both for the matrix plane and the input bitmap), so
        // presence is already established and the scan may stop.
        truth = true;
        break;
      }
    }
    if (pres) out_pres.set(i);
    if (truth) out_truth.set(i);
  }
}

/// vxm as the push-style word OR: every frontier row ORs its word row into
/// the output planes. OR is order-independent, so this matches the
/// pull-style per-destination fold bit for bit — the same equivalence the
/// CSR push/pull pair maintains.
inline void bit_vxm(const sparse::BitVector& upres,
                    const sparse::BitVector& utruth,
                    const sparse::BitMatrix& a,
                    sparse::BitVector& out_pres,
                    sparse::BitVector& out_truth) {
  const sparse::Index words = sparse::bit_words(a.ncols());
  std::uint64_t* op = out_pres.mutable_words();
  std::uint64_t* ot = out_truth.mutable_words();
  for (sparse::Index iw = 0; iw < upres.word_count(); ++iw) {
    std::uint64_t word = upres.words()[iw];
    while (word) {
      const sparse::Index i =
          iw * sparse::kBitWordBits + sparse::bit_ffs(word);
      word &= word - 1;
      const bool truthy = utruth.test(i);
      const std::uint64_t* srow = a.structure_row(i);
      const std::uint64_t* trow = a.truth_row(i);
      for (sparse::Index w = 0; w < words; ++w) {
        op[w] |= srow[w];
        if (truthy) ot[w] |= trow[w];
      }
    }
  }
}

/// Masked apply as a word op: out = src AND mask (or AND NOT mask). The
/// complemented mask is tail-masked so phantom bits past n never appear.
inline void bit_masked_apply(const sparse::BitVector& src,
                             const sparse::BitVector& mask, bool complement,
                             sparse::BitVector& out) {
  std::uint64_t* ow = out.mutable_words();
  for (sparse::Index w = 0; w < src.word_count(); ++w) {
    std::uint64_t m = mask.words()[w];
    if (complement) {
      m = ~m;
      if (w + 1 == src.word_count()) m &= sparse::bit_tail_mask(src.size());
    }
    ow[w] = src.words()[w] & m;
  }
}

/// Masked mxm as AND-popcount: for every structure bit (i, j) of @p mask,
/// count the shared neighbours popcount(row_a(i) & row_bt(j)) — @p bt holds
/// Bᵀ row-major, so both word rows span the inner dimension. Zero counts
/// are dropped (no overlap ⇒ no product ⇒ absent entry). Emits CSR in
/// ascending (i, j) order.
template <typename T>
sparse::Csr<T> bit_masked_mxm_popcount(const sparse::BitMatrix& a,
                                       const sparse::BitMatrix& bt,
                                       const sparse::BitMatrix& mask) {
  const sparse::Index kwords = sparse::bit_words(a.ncols());
  sparse::Csr<T> out;
  out.nrows = mask.nrows();
  out.ncols = mask.ncols();
  out.row_offsets.assign(mask.nrows() + 1, 0);
  for (sparse::Index i = 0; i < mask.nrows(); ++i) {
    const std::uint64_t* mrow = mask.structure_row(i);
    const std::uint64_t* arow = a.structure_row(i);
    for (sparse::Index mw = 0; mw < sparse::bit_words(mask.ncols()); ++mw) {
      std::uint64_t word = mrow[mw];
      while (word) {
        const sparse::Index j =
            mw * sparse::kBitWordBits + sparse::bit_ffs(word);
        word &= word - 1;
        const std::uint64_t* brow = bt.structure_row(j);
        std::uint64_t count = 0;
        for (sparse::Index w = 0; w < kwords; ++w)
          count += sparse::bit_popcount(arow[w] & brow[w]);
        if (count == 0) continue;
        out.col_indices.push_back(j);
        out.values.push_back(static_cast<T>(count));
      }
    }
    out.row_offsets[i + 1] = static_cast<sparse::Index>(out.col_indices.size());
  }
  return out;
}

}  // namespace grb::seq_backend
