#pragma once

/// @file backend_sequential/matrix.hpp
/// Sequential-backend sparse matrix: list-of-sparse-rows (LIL), each row a
/// vector of (column, value) pairs sorted by column. This mirrors GBTL's
/// reference backend — optimized for clarity and for serving as the oracle
/// the GPU backend is validated against.

#include <algorithm>
#include <utility>
#include <vector>

#include "gbtl/types.hpp"

namespace grb::seq_backend {

template <typename T>
class Matrix {
 public:
  using ScalarType = T;
  /// One stored entry: (column index, value), rows kept column-sorted.
  using Entry = std::pair<IndexType, T>;
  using Row = std::vector<Entry>;

  Matrix() = default;
  Matrix(IndexType nrows, IndexType ncols)
      : nrows_(nrows), ncols_(ncols), rows_(nrows) {
    if (nrows == 0 || ncols == 0)
      throw InvalidValueException("matrix dimensions must be positive");
  }

  IndexType nrows() const { return nrows_; }
  IndexType ncols() const { return ncols_; }
  IndexType nvals() const { return nvals_; }

  void clear() {
    for (auto& r : rows_) r.clear();
    nvals_ = 0;
  }

  /// GrB_Matrix_resize semantics: change shape, dropping entries that fall
  /// outside the new bounds; growth adds empty space.
  void resize(IndexType nrows, IndexType ncols) {
    if (nrows == 0 || ncols == 0)
      throw InvalidValueException("resize: dimensions must be positive");
    if (nrows < nrows_) {
      for (IndexType i = nrows; i < nrows_; ++i) nvals_ -= rows_[i].size();
    }
    rows_.resize(nrows);
    nrows_ = nrows;
    if (ncols < ncols_) {
      for (auto& row : rows_) {
        auto it = std::lower_bound(
            row.begin(), row.end(), ncols,
            [](const Entry& e, IndexType col) { return e.first < col; });
        nvals_ -= static_cast<IndexType>(row.end() - it);
        row.erase(it, row.end());
      }
    }
    ncols_ = ncols;
  }

  /// Build from coordinate arrays; duplicates combine via @p dup.
  template <typename VIt, typename DupOp>
  void build(const IndexArrayType& row_idx, const IndexArrayType& col_idx,
             VIt values_begin, IndexType n, DupOp dup) {
    if (row_idx.size() < n || col_idx.size() < n)
      throw InvalidValueException("build: index arrays shorter than n");
    clear();
    for (IndexType k = 0; k < n; ++k) {
      const IndexType i = row_idx[k];
      const IndexType j = col_idx[k];
      if (i >= nrows_ || j >= ncols_)
        throw IndexOutOfBoundsException("build: tuple outside matrix shape");
      const T v = *(values_begin + static_cast<std::ptrdiff_t>(k));
      auto& row = rows_[i];
      auto it = std::lower_bound(
          row.begin(), row.end(), j,
          [](const Entry& e, IndexType col) { return e.first < col; });
      if (it != row.end() && it->first == j) {
        it->second = dup(it->second, v);
      } else {
        row.insert(it, Entry{j, v});
        ++nvals_;
      }
    }
  }

  bool has_element(IndexType i, IndexType j) const {
    bounds_check(i, j);
    return find(i, j) != nullptr;
  }

  T get_element(IndexType i, IndexType j) const {
    bounds_check(i, j);
    const T* v = find(i, j);
    if (v == nullptr) throw NoValueException("matrix getElement");
    return *v;
  }

  void set_element(IndexType i, IndexType j, const T& v) {
    bounds_check(i, j);
    auto& row = rows_[i];
    auto it = std::lower_bound(
        row.begin(), row.end(), j,
        [](const Entry& e, IndexType col) { return e.first < col; });
    if (it != row.end() && it->first == j) {
      it->second = v;
    } else {
      row.insert(it, Entry{j, v});
      ++nvals_;
    }
  }

  void remove_element(IndexType i, IndexType j) {
    bounds_check(i, j);
    auto& row = rows_[i];
    auto it = std::lower_bound(
        row.begin(), row.end(), j,
        [](const Entry& e, IndexType col) { return e.first < col; });
    if (it != row.end() && it->first == j) {
      row.erase(it);
      --nvals_;
    }
  }

  /// Row-major sorted tuple dump (the GrB_Matrix_extractTuples analogue).
  void extract_tuples(IndexArrayType& row_idx, IndexArrayType& col_idx,
                      std::vector<T>& values) const {
    row_idx.clear();
    col_idx.clear();
    values.clear();
    row_idx.reserve(nvals_);
    col_idx.reserve(nvals_);
    values.reserve(nvals_);
    for (IndexType i = 0; i < nrows_; ++i) {
      for (const auto& [j, v] : rows_[i]) {
        row_idx.push_back(i);
        col_idx.push_back(j);
        values.push_back(v);
      }
    }
  }

  const Row& row(IndexType i) const { return rows_[i]; }

  /// Replace row i wholesale (entries must arrive column-sorted). Keeps
  /// nvals_ consistent; the workhorse of the operation write-back path.
  void set_row(IndexType i, Row&& entries) {
    nvals_ -= rows_[i].size();
    rows_[i] = std::move(entries);
    nvals_ += rows_[i].size();
  }

  /// Pointer to stored value or nullptr — used for mask probing.
  const T* find(IndexType i, IndexType j) const {
    const auto& row = rows_[i];
    auto it = std::lower_bound(
        row.begin(), row.end(), j,
        [](const Entry& e, IndexType col) { return e.first < col; });
    if (it != row.end() && it->first == j) return &it->second;
    return nullptr;
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.nrows_ == b.nrows_ && a.ncols_ == b.ncols_ &&
           a.rows_ == b.rows_;
  }

 private:
  void bounds_check(IndexType i, IndexType j) const {
    if (i >= nrows_ || j >= ncols_)
      throw IndexOutOfBoundsException("matrix element access");
  }

  IndexType nrows_ = 0;
  IndexType ncols_ = 0;
  std::vector<Row> rows_;
  IndexType nvals_ = 0;
};

}  // namespace grb::seq_backend
