#pragma once

/// @file backend_sequential/matrix.hpp
/// Sequential-backend sparse matrix: list-of-sparse-rows (LIL), each row a
/// vector of (column, value) pairs sorted by column. This mirrors GBTL's
/// reference backend — optimized for clarity and for serving as the oracle
/// the GPU backend is validated against.
///
/// Shared by the Sequential and CpuPar backends: there is no derived
/// element counter, so set_row() on distinct rows from distinct threads
/// touches only each row's own storage (nvals() sums row sizes on demand).
/// set_row does bump the mutation epoch backing cached_aux(), but that
/// counter is a relaxed atomic, so concurrent bumps stay race-free.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "gbtl/types.hpp"

namespace grb::seq_backend {

template <typename T>
class Matrix {
 public:
  using ScalarType = T;
  /// One stored entry: (column index, value), rows kept column-sorted.
  using Entry = std::pair<IndexType, T>;
  using Row = std::vector<Entry>;

  Matrix() = default;
  Matrix(IndexType nrows, IndexType ncols)
      : nrows_(nrows), ncols_(ncols), rows_(nrows) {
    if (nrows == 0 || ncols == 0)
      throw InvalidValueException("matrix dimensions must be positive");
  }

  // The aux cache's mutex/atomic are not copyable, so spell the special
  // members out: copies and moves transfer only the mathematical content —
  // the destination starts with an empty cache at a fresh epoch.
  Matrix(const Matrix& o)
      : nrows_(o.nrows_), ncols_(o.ncols_), rows_(o.rows_) {}
  Matrix(Matrix&& o) noexcept
      : nrows_(o.nrows_), ncols_(o.ncols_), rows_(std::move(o.rows_)) {}
  Matrix& operator=(const Matrix& o) {
    nrows_ = o.nrows_;
    ncols_ = o.ncols_;
    rows_ = o.rows_;
    bump_epoch();
    return *this;
  }
  Matrix& operator=(Matrix&& o) noexcept {
    nrows_ = o.nrows_;
    ncols_ = o.ncols_;
    rows_ = std::move(o.rows_);
    bump_epoch();
    return *this;
  }

  IndexType nrows() const { return nrows_; }
  IndexType ncols() const { return ncols_; }

  /// Stored-element count, summed over the rows on demand.
  IndexType nvals() const {
    IndexType n = 0;
    for (const auto& r : rows_) n += r.size();
    return n;
  }

  void clear() {
    for (auto& r : rows_) r.clear();
    bump_epoch();
  }

  /// GrB_Matrix_resize semantics: change shape, dropping entries that fall
  /// outside the new bounds; growth adds empty space.
  void resize(IndexType nrows, IndexType ncols) {
    if (nrows == 0 || ncols == 0)
      throw InvalidValueException("resize: dimensions must be positive");
    rows_.resize(nrows);
    nrows_ = nrows;
    if (ncols < ncols_) {
      for (auto& row : rows_) {
        auto it = std::lower_bound(
            row.begin(), row.end(), ncols,
            [](const Entry& e, IndexType col) { return e.first < col; });
        row.erase(it, row.end());
      }
    }
    ncols_ = ncols;
    bump_epoch();
  }

  /// Build from coordinate arrays; duplicates combine via @p dup.
  template <typename VIt, typename DupOp>
  void build(const IndexArrayType& row_idx, const IndexArrayType& col_idx,
             VIt values_begin, IndexType n, DupOp dup) {
    if (row_idx.size() < n || col_idx.size() < n)
      throw InvalidValueException("build: index arrays shorter than n");
    clear();
    for (IndexType k = 0; k < n; ++k) {
      const IndexType i = row_idx[k];
      const IndexType j = col_idx[k];
      if (i >= nrows_ || j >= ncols_)
        throw IndexOutOfBoundsException("build: tuple outside matrix shape");
      const T v = *(values_begin + static_cast<std::ptrdiff_t>(k));
      auto& row = rows_[i];
      auto it = std::lower_bound(
          row.begin(), row.end(), j,
          [](const Entry& e, IndexType col) { return e.first < col; });
      if (it != row.end() && it->first == j) {
        it->second = dup(it->second, v);
      } else {
        row.insert(it, Entry{j, v});
      }
    }
    bump_epoch();
  }

  bool has_element(IndexType i, IndexType j) const {
    bounds_check(i, j);
    return find(i, j) != nullptr;
  }

  T get_element(IndexType i, IndexType j) const {
    bounds_check(i, j);
    const T* v = find(i, j);
    if (v == nullptr) throw NoValueException("matrix getElement");
    return *v;
  }

  void set_element(IndexType i, IndexType j, const T& v) {
    bounds_check(i, j);
    auto& row = rows_[i];
    auto it = std::lower_bound(
        row.begin(), row.end(), j,
        [](const Entry& e, IndexType col) { return e.first < col; });
    if (it != row.end() && it->first == j) {
      it->second = v;
    } else {
      row.insert(it, Entry{j, v});
    }
    bump_epoch();
  }

  void remove_element(IndexType i, IndexType j) {
    bounds_check(i, j);
    auto& row = rows_[i];
    auto it = std::lower_bound(
        row.begin(), row.end(), j,
        [](const Entry& e, IndexType col) { return e.first < col; });
    if (it != row.end() && it->first == j) row.erase(it);
    bump_epoch();
  }

  /// Row-major sorted tuple dump (the GrB_Matrix_extractTuples analogue).
  void extract_tuples(IndexArrayType& row_idx, IndexArrayType& col_idx,
                      std::vector<T>& values) const {
    row_idx.clear();
    col_idx.clear();
    values.clear();
    const IndexType nnz = nvals();
    row_idx.reserve(nnz);
    col_idx.reserve(nnz);
    values.reserve(nnz);
    for (IndexType i = 0; i < nrows_; ++i) {
      for (const auto& [j, v] : rows_[i]) {
        row_idx.push_back(i);
        col_idx.push_back(j);
        values.push_back(v);
      }
    }
  }

  const Row& row(IndexType i) const { return rows_[i]; }

  /// Replace row i wholesale (entries must arrive column-sorted); the
  /// workhorse of the operation write-back path. Touches only row i's own
  /// storage, so concurrent set_row on distinct rows is race-free.
  void set_row(IndexType i, Row&& entries) {
    rows_[i] = std::move(entries);
    bump_epoch();
  }

  /// Derived-data cache (one slot), keyed by the mutation epoch: returns
  /// the object stored at the current epoch, or builds one via @p make
  /// (which must return std::shared_ptr<const U>) and stores it. The CpuPar
  /// backend keeps its per-matrix CSC layout here so iterated vxm — the
  /// shape of PageRank — pays the layout build once per matrix, not once
  /// per call. Concurrent readers of a quiescent matrix are safe; the
  /// returned pointer stays valid even if the matrix mutates afterwards.
  template <typename U, typename Factory>
  std::shared_ptr<const U> cached_aux(Factory&& make) const {
    const std::uint64_t now = epoch_.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(aux_mutex_);
      if (aux_ && aux_epoch_ == now)
        return std::static_pointer_cast<const U>(aux_);
    }
    std::shared_ptr<const U> built = make();
    std::lock_guard<std::mutex> lock(aux_mutex_);
    aux_ = built;
    aux_epoch_ = now;
    return built;
  }

  /// Pointer to stored value or nullptr — used for mask probing.
  const T* find(IndexType i, IndexType j) const {
    const auto& row = rows_[i];
    auto it = std::lower_bound(
        row.begin(), row.end(), j,
        [](const Entry& e, IndexType col) { return e.first < col; });
    if (it != row.end() && it->first == j) return &it->second;
    return nullptr;
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.nrows_ == b.nrows_ && a.ncols_ == b.ncols_ &&
           a.rows_ == b.rows_;
  }

 private:
  void bounds_check(IndexType i, IndexType j) const {
    if (i >= nrows_ || j >= ncols_)
      throw IndexOutOfBoundsException("matrix element access");
  }

  // Relaxed is enough: the epoch only needs to be coherent for matrices
  // that are quiescent while read, and set_row must stay callable from
  // concurrent pool workers (CpuPar write-back) without a race.
  void bump_epoch() { epoch_.fetch_add(1, std::memory_order_relaxed); }

  IndexType nrows_ = 0;
  IndexType ncols_ = 0;
  std::vector<Row> rows_;

  std::atomic<std::uint64_t> epoch_{0};
  mutable std::mutex aux_mutex_;
  mutable std::shared_ptr<const void> aux_;
  mutable std::uint64_t aux_epoch_ = 0;
};

}  // namespace grb::seq_backend
