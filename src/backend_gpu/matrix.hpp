#pragma once

/// @file backend_gpu/matrix.hpp
/// GPU-backend sparse matrix: CSR resident in simulated device memory
/// (row_offsets / col_indices / values), the format the paper's CUDA
/// backend standardized on (see the format ablation, Abl. A). Structure
/// mutations (setElement / removeElement) round-trip through the host with
/// fully accounted transfers — exactly the cost a real CUDA backend pays,
/// which is why GraphBLAS algorithms batch their construction via build().

#include <algorithm>
#include <utility>
#include <vector>

#include "gbtl/types.hpp"
#include "gpu_sim/algorithms.hpp"
#include "gpu_sim/context.hpp"
#include "gpu_sim/device_vector.hpp"
#include "sparse/bitmap.hpp"
#include "sparse/fusion_plan.hpp"

namespace grb::gpu_backend {

template <typename T>
class Matrix {
 public:
  using ScalarType = T;

  /// Host-side COO snapshot used by the build/mutation paths and the
  /// host-fallback operations.
  struct HostCoo {
    IndexArrayType rows;
    IndexArrayType cols;
    std::vector<T> vals;
  };

  Matrix() = default;
  Matrix(IndexType nrows, IndexType ncols, gpu_sim::Context& ctx = gpu_sim::device())
      : nrows_(nrows),
        ncols_(ncols),
        ctx_(&ctx),
        row_offsets_(nrows + 1, ctx),
        col_indices_(ctx),
        values_(ctx) {
    if (nrows == 0 || ncols == 0)
      throw InvalidValueException("matrix dimensions must be positive");
    gpu_sim::fill(row_offsets_, IndexType{0});
  }

  // Copies carry only the canonical CSR form; the CSC cache is rebuilt on
  // demand so copies don't pay (or distort) d2d traffic for cache state.
  Matrix(const Matrix& other)
      : nrows_(other.nrows_),
        ncols_(other.ncols_),
        ctx_(other.ctx_),
        row_offsets_(other.row_offsets_),
        col_indices_(other.col_indices_),
        values_(other.values_) {}
  Matrix& operator=(const Matrix& other) {
    if (this != &other) {
      // Pending recorded ops may read this matrix; drain them before the
      // overwrite. (Matrices are never pending *outputs*, so reading
      // `other` needs no drain.)
      sparse::fusion_sync_if_touches(this);
      nrows_ = other.nrows_;
      ncols_ = other.ncols_;
      ctx_ = other.ctx_;
      row_offsets_ = other.row_offsets_;
      col_indices_ = other.col_indices_;
      values_ = other.values_;
      invalidate_csc();
    }
    return *this;
  }
  // Moving or destroying a matrix that a pending recorded op reads would
  // leave the op's captured reference dangling — drain first (touch-
  // filtered, like backend_gpu::Vector).
  Matrix(Matrix&& other) noexcept
      : nrows_((sparse::fusion_sync_if_touches(&other), other.nrows_)),
        ncols_(other.ncols_),
        ctx_(other.ctx_),
        row_offsets_(std::move(other.row_offsets_)),
        col_indices_(std::move(other.col_indices_)),
        values_(std::move(other.values_)),
        csc_valid_(other.csc_valid_),
        csc_offsets_(std::move(other.csc_offsets_)),
        csc_rows_(std::move(other.csc_rows_)),
        csc_vals_(std::move(other.csc_vals_)),
        bit_rows_(std::move(other.bit_rows_)),
        bit_cols_(std::move(other.bit_cols_)) {}
  Matrix& operator=(Matrix&& other) noexcept {
    if (this != &other) {
      sparse::fusion_sync_if_touches(this);
      sparse::fusion_sync_if_touches(&other);
      nrows_ = other.nrows_;
      ncols_ = other.ncols_;
      ctx_ = other.ctx_;
      row_offsets_ = std::move(other.row_offsets_);
      col_indices_ = std::move(other.col_indices_);
      values_ = std::move(other.values_);
      csc_valid_ = other.csc_valid_;
      csc_offsets_ = std::move(other.csc_offsets_);
      csc_rows_ = std::move(other.csc_rows_);
      csc_vals_ = std::move(other.csc_vals_);
      bit_rows_ = std::move(other.bit_rows_);
      bit_cols_ = std::move(other.bit_cols_);
    }
    return *this;
  }
  ~Matrix() { sparse::fusion_sync_if_touches(this); }

  IndexType nrows() const { return nrows_; }
  IndexType ncols() const { return ncols_; }
  IndexType nvals() const { return col_indices_.size(); }
  gpu_sim::Context& context() const { return *ctx_; }

  void clear() {
    sparse::fusion_sync_if_touches(this);
    gpu_sim::fill(row_offsets_, IndexType{0});
    col_indices_.clear();
    values_.clear();
    invalidate_csc();
  }

  /// GrB_Matrix_resize: a device pipeline — flag in-bounds entries, compact
  /// keys+values, rebuild CSR under the new column stride.
  void resize(IndexType nrows, IndexType ncols) {
    if (nrows == 0 || ncols == 0)
      throw InvalidValueException("resize: dimensions must be positive");
    sparse::fusion_sync_if_touches(this);
    const IndexType nnz = nvals();
    const IndexType old_ncols = ncols_;

    // Old flattened keys (computed against the old stride).
    gpu_sim::device_vector<IndexType> keys(nnz, *ctx_);
    {
      const IndexType* offs = row_offsets_.data();
      const IndexType* cols = col_indices_.data();
      IndexType* out = keys.data();
      const IndexType n = nrows_;
      ctx_->launch_n(n,
                     gpu_sim::LaunchStats{nnz + n,
                                          (n + nnz) * sizeof(IndexType),
                                          nnz * sizeof(IndexType)},
                     [=](std::size_t i) {
                       for (IndexType k = offs[i]; k < offs[i + 1]; ++k)
                         out[k] = static_cast<IndexType>(i) * old_ncols +
                                  cols[k];
                     });
    }
    // In-bounds flags + re-keyed coordinates under the new stride.
    gpu_sim::device_vector<std::uint8_t> flags(nnz, *ctx_);
    gpu_sim::device_vector<IndexType> new_keys(nnz, *ctx_);
    {
      const IndexType* k = keys.data();
      std::uint8_t* f = flags.data();
      IndexType* nk = new_keys.data();
      ctx_->launch_n(nnz,
                     gpu_sim::LaunchStats{3 * nnz,
                                          nnz * sizeof(IndexType),
                                          nnz * (sizeof(IndexType) + 1)},
                     [=](std::size_t p) {
                       const IndexType r = k[p] / old_ncols;
                       const IndexType c = k[p] % old_ncols;
                       const bool keep = r < nrows && c < ncols;
                       f[p] = keep ? 1 : 0;
                       nk[p] = keep ? r * ncols + c : 0;
                     });
    }
    gpu_sim::device_vector<IndexType> kept_keys(*ctx_);
    gpu_sim::device_vector<T> kept_vals(*ctx_);
    gpu_sim::copy_flagged(new_keys, flags, kept_keys);
    gpu_sim::copy_flagged(values_, flags, kept_vals);

    nrows_ = nrows;
    ncols_ = ncols;
    row_offsets_ = gpu_sim::device_vector<IndexType>(nrows + 1, *ctx_);
    load_from_sorted_keys(kept_keys, kept_vals);
  }

  /// Build from host coordinate arrays: upload, radix sort by (row, col),
  /// collapse duplicates with @p dup, then derive CSR offsets with a
  /// vectorized lower_bound — the CUSP construction pipeline.
  template <typename VIt, typename DupOp>
  void build(const IndexArrayType& row_idx, const IndexArrayType& col_idx,
             VIt values_begin, IndexType n, DupOp dup) {
    if (row_idx.size() < n || col_idx.size() < n)
      throw InvalidValueException("build: index arrays shorter than n");
    sparse::fusion_sync_if_touches(this);
    std::vector<IndexType> keys(n);
    std::vector<T> vals(n);
    for (IndexType k = 0; k < n; ++k) {
      if (row_idx[k] >= nrows_ || col_idx[k] >= ncols_)
        throw IndexOutOfBoundsException("build: tuple outside matrix shape");
      keys[k] = row_idx[k] * ncols_ + col_idx[k];
      vals[k] = *(values_begin + static_cast<std::ptrdiff_t>(k));
    }
    gpu_sim::device_vector<IndexType> d_keys(keys, *ctx_);
    gpu_sim::device_vector<T> d_vals(vals, *ctx_);
    gpu_sim::sort_by_key(d_keys, d_vals);
    gpu_sim::device_vector<IndexType> u_keys(*ctx_);
    gpu_sim::device_vector<T> u_vals(*ctx_);
    gpu_sim::reduce_by_key(d_keys, d_vals, u_keys, u_vals, dup);
    load_from_sorted_keys(u_keys, u_vals);
  }

  /// Row-major sorted tuple dump (one accounted D2H per component).
  void extract_tuples(IndexArrayType& row_idx, IndexArrayType& col_idx,
                      std::vector<T>& values) const {
    const auto offs = row_offsets_.to_host();
    const auto cols = col_indices_.to_host();
    values = values_.to_host();
    row_idx.clear();
    col_idx.clear();
    row_idx.reserve(cols.size());
    col_idx.assign(cols.begin(), cols.end());
    for (IndexType i = 0; i < nrows_; ++i)
      for (IndexType k = offs[i]; k < offs[i + 1]; ++k) row_idx.push_back(i);
  }

  HostCoo to_host_coo() const {
    HostCoo coo;
    extract_tuples(coo.rows, coo.cols, coo.vals);
    return coo;
  }

  /// Replace contents from host COO (need not be sorted or deduplicated —
  /// last duplicate wins, matching setElement-style mutation semantics).
  void from_host_coo(const HostCoo& coo) {
    build(coo.rows, coo.cols, coo.vals.begin(),
          static_cast<IndexType>(coo.vals.size()),
          [](const T&, const T& b) { return b; });
  }

  bool has_element(IndexType i, IndexType j) const {
    bounds_check(i, j);
    return find_position(i, j) != kNotFound;
  }

  T get_element(IndexType i, IndexType j) const {
    bounds_check(i, j);
    const IndexType pos = find_position(i, j);
    if (pos == kNotFound) throw NoValueException("matrix getElement");
    T out;
    ctx_->copy_d2h(&out, values_.data() + pos, sizeof(T));
    return out;
  }

  void set_element(IndexType i, IndexType j, const T& v) {
    bounds_check(i, j);
    sparse::fusion_sync_if_touches(this);
    const IndexType pos = find_position(i, j);
    if (pos != kNotFound) {
      ctx_->copy_h2d(values_.data() + pos, &v, sizeof(T));
      invalidate_csc();  // CSC mirrors values too, not just structure
      return;
    }
    HostCoo coo = to_host_coo();
    coo.rows.push_back(i);
    coo.cols.push_back(j);
    coo.vals.push_back(v);
    from_host_coo(coo);
  }

  void remove_element(IndexType i, IndexType j) {
    bounds_check(i, j);
    sparse::fusion_sync_if_touches(this);
    if (find_position(i, j) == kNotFound) return;
    HostCoo coo = to_host_coo();
    HostCoo out;
    for (IndexType k = 0; k < coo.rows.size(); ++k) {
      if (coo.rows[k] == i && coo.cols[k] == j) continue;
      out.rows.push_back(coo.rows[k]);
      out.cols.push_back(coo.cols[k]);
      out.vals.push_back(coo.vals[k]);
    }
    from_host_coo(out);
  }

  // --- Device-side access for the operation pipelines --------------------
  const gpu_sim::device_vector<IndexType>& row_offsets() const {
    return row_offsets_;
  }
  const gpu_sim::device_vector<IndexType>& col_indices() const {
    return col_indices_;
  }
  const gpu_sim::device_vector<T>& values() const { return values_; }

  // --- Transpose-side (CSC) view for pull-direction kernels ---------------
  // Lazily derived from CSR on first use (one accounted device pipeline:
  // expand + radix sort + gathers + lower_bound), then cached until any
  // structural or value mutation. The pull kernel walks column j of A —
  // i.e. the in-edges of destination j — via these three arrays.
  const gpu_sim::device_vector<IndexType>& col_offsets() const {
    ensure_csc();
    return csc_offsets_;
  }
  const gpu_sim::device_vector<IndexType>& csc_row_indices() const {
    ensure_csc();
    return csc_rows_;
  }
  const gpu_sim::device_vector<T>& csc_values() const {
    ensure_csc();
    return csc_vals_;
  }
  bool csc_cached() const { return csc_valid_; }

  // --- Bit-format views (sparse/bitmap.hpp layout, device-resident) -------
  // Two lazily-built orientations, each a row-major word bitmap with a
  // cache-line-aligned stride: the ROW view packs the rows of A over ncols
  // (serves the mxv gather and the mxm popcount's left operand), the COL
  // view packs the rows of A^T over nrows (the CSC analog — serves the
  // pull-direction vxm and the mxm popcount's right operand). Each carries
  // a structure plane plus, when some stored value is falsy, a truth plane
  // (otherwise truth aliases structure). Materialized on demand by an
  // explicit, counted, pool-allocated conversion (note_bit_conversion),
  // cached until any structural or value mutation.
  struct BitView {
    bool valid = false;
    bool all_truthy = true;
    IndexType stride = 0;  ///< words per row (sparse::bit_row_stride)
    gpu_sim::device_vector<std::uint64_t> structure;
    gpu_sim::device_vector<std::uint64_t> truth;  ///< empty when all_truthy

    const std::uint64_t* structure_row(IndexType i) const {
      return structure.data() + i * stride;
    }
    const std::uint64_t* truth_row(IndexType i) const {
      return (all_truthy ? structure.data() : truth.data()) + i * stride;
    }
  };
  const BitView& bit_row_view() const {
    ensure_bits(bit_rows_, /*transpose=*/false);
    return bit_rows_;
  }
  const BitView& bit_col_view() const {
    ensure_bits(bit_cols_, /*transpose=*/true);
    return bit_cols_;
  }
  bool bit_cached(bool transpose) const {
    return transpose ? bit_cols_.valid : bit_rows_.valid;
  }

  /// Adopt device CSR arrays produced by an operation pipeline.
  void adopt(gpu_sim::device_vector<IndexType>&& row_offsets,
             gpu_sim::device_vector<IndexType>&& col_indices,
             gpu_sim::device_vector<T>&& values) {
    sparse::fusion_sync_if_touches(this);
    row_offsets_ = std::move(row_offsets);
    col_indices_ = std::move(col_indices);
    values_ = std::move(values);
    invalidate_csc();
  }

  /// Adopt flattened (row*ncols+col)-sorted key/value arrays.
  void load_from_sorted_keys(const gpu_sim::device_vector<IndexType>& keys,
                             const gpu_sim::device_vector<T>& vals) {
    invalidate_csc();
    const IndexType n = keys.size();
    col_indices_.resize(n);
    values_ = vals;
    // Split keys into (row, col) and derive row offsets.
    gpu_sim::device_vector<IndexType> rows(n, *ctx_);
    {
      const IndexType* k = keys.data();
      IndexType* r = rows.data();
      IndexType* c = col_indices_.data();
      const IndexType ncols = ncols_;
      ctx_->launch_n(
          n,
          gpu_sim::LaunchStats{2 * n, n * sizeof(IndexType),
                               2 * n * sizeof(IndexType)},
          [=](std::size_t t) {
            r[t] = k[t] / ncols;
            c[t] = k[t] % ncols;
          });
    }
    gpu_sim::device_vector<IndexType> needles(nrows_ + 1, *ctx_);
    gpu_sim::sequence(needles, IndexType{0});
    gpu_sim::lower_bound(rows, needles, row_offsets_);
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    if (a.nrows_ != b.nrows_ || a.ncols_ != b.ncols_) return false;
    IndexArrayType ar, ac, br, bc;
    std::vector<T> av, bv;
    a.extract_tuples(ar, ac, av);
    b.extract_tuples(br, bc, bv);
    return ar == br && ac == bc && av == bv;
  }

 private:
  static constexpr IndexType kNotFound = ~IndexType{0};

  // Every mutation site funnels through here, so the bit views share the
  // CSC cache's exact invalidation discipline (values matter to both: the
  // truth plane mirrors value truthiness the way CSC mirrors values).
  void invalidate_csc() {
    csc_valid_ = false;
    csc_offsets_ = gpu_sim::device_vector<IndexType>();
    csc_rows_ = gpu_sim::device_vector<IndexType>();
    csc_vals_ = gpu_sim::device_vector<T>();
    bit_rows_ = BitView{};
    bit_cols_ = BitView{};
  }

  /// Materialize one bit-view orientation from CSR: a truthiness inspector
  /// over the values, zero-filled word planes, then a per-row scatter that
  /// ORs one bit per stored entry (random word writes in the transpose
  /// orientation — the bitmap is random-access, so no sort is needed,
  /// unlike the CSC build). Explicit, counted, pool-allocated.
  void ensure_bits(BitView& view, bool transpose) const {
    if (view.valid) return;
    const IndexType rows = transpose ? ncols_ : nrows_;
    const IndexType width = transpose ? nrows_ : ncols_;
    const IndexType nnz = nvals();
    view.stride = static_cast<IndexType>(sparse::bit_row_stride(width));

    // Truthiness inspector: one streaming pass over the values.
    view.all_truthy = true;
    {
      const T* vals = values_.data();
      for (IndexType k = 0; k < nnz; ++k)
        if (vals[k] == T{}) {
          view.all_truthy = false;
          break;
        }
      ctx_->account_kernel(
          gpu_sim::LaunchStats{nnz, nnz * sizeof(T), 8});
    }

    const IndexType plane_words = rows * view.stride;
    view.structure =
        gpu_sim::device_vector<std::uint64_t>(plane_words, *ctx_);
    gpu_sim::fill(view.structure, std::uint64_t{0});
    if (!view.all_truthy) {
      view.truth = gpu_sim::device_vector<std::uint64_t>(plane_words, *ctx_);
      gpu_sim::fill(view.truth, std::uint64_t{0});
    }

    const IndexType* offs = row_offsets_.data();
    const IndexType* cols = col_indices_.data();
    const T* vals = values_.data();
    std::uint64_t* splane = view.structure.data();
    std::uint64_t* tplane =
        view.all_truthy ? nullptr : view.truth.data();
    const IndexType stride = view.stride;
    const bool tr = transpose;
    const std::uint64_t planes = view.all_truthy ? 1 : 2;
    ctx_->launch_n(
        nrows_,
        gpu_sim::LaunchStats{
            2 * nnz + nrows_,
            (nrows_ + 1 + nnz) * sizeof(IndexType) + nnz * sizeof(T),
            nnz * 8 * planes},
        [=](std::size_t i) {
          for (IndexType k = offs[i]; k < offs[i + 1]; ++k) {
            const IndexType r = tr ? cols[k] : static_cast<IndexType>(i);
            const IndexType c = tr ? static_cast<IndexType>(i) : cols[k];
            const std::uint64_t bit = std::uint64_t{1}
                                      << (c % sparse::kBitWordBits);
            // atomicOr on real hardware; the simulation runs serially.
            splane[r * stride + c / sparse::kBitWordBits] |= bit;
            if (tplane && vals[k] != T{})
              tplane[r * stride + c / sparse::kBitWordBits] |= bit;
          }
        });
    view.valid = true;
    ctx_->note_bit_conversion();
  }

  /// Materialize the CSC view from CSR: expand per-entry coordinates,
  /// flatten column-major (col * nrows + row), radix-sort, gather the value
  /// payload along, and derive column offsets with a vectorized
  /// lower_bound — the same CUSP-style pipeline build() uses for CSR.
  void ensure_csc() const {
    if (csc_valid_) return;
    const IndexType n = nvals();
    gpu_sim::device_vector<IndexType> keys(n, *ctx_);
    {
      const IndexType* offs = row_offsets_.data();
      const IndexType* cols = col_indices_.data();
      IndexType* out = keys.data();
      const IndexType nr = nrows_;
      ctx_->launch_n(nrows_,
                     gpu_sim::LaunchStats{n + nrows_,
                                          (nrows_ + n) * sizeof(IndexType),
                                          n * sizeof(IndexType)},
                     [=](std::size_t i) {
                       for (IndexType k = offs[i]; k < offs[i + 1]; ++k)
                         out[k] = cols[k] * nr + static_cast<IndexType>(i);
                     });
    }
    gpu_sim::device_vector<IndexType> perm(*ctx_);
    gpu_sim::stable_argsort(keys, perm);
    gpu_sim::device_vector<IndexType> sorted_keys(*ctx_);
    gpu_sim::gather(perm, keys, sorted_keys);
    csc_vals_ = gpu_sim::device_vector<T>(*ctx_);
    gpu_sim::gather(perm, values_, csc_vals_);
    // Split sorted keys back into per-entry row and column streams.
    csc_rows_ = gpu_sim::device_vector<IndexType>(n, *ctx_);
    gpu_sim::device_vector<IndexType> sorted_cols(n, *ctx_);
    {
      const IndexType* sk = sorted_keys.data();
      IndexType* r = csc_rows_.data();
      IndexType* c = sorted_cols.data();
      const IndexType nr = nrows_;
      ctx_->launch_n(n,
                     gpu_sim::LaunchStats{2 * n, n * sizeof(IndexType),
                                          2 * n * sizeof(IndexType)},
                     [=](std::size_t t) {
                       r[t] = sk[t] % nr;
                       c[t] = sk[t] / nr;
                     });
    }
    gpu_sim::device_vector<IndexType> needles(ncols_ + 1, *ctx_);
    gpu_sim::sequence(needles, IndexType{0});
    csc_offsets_ = gpu_sim::device_vector<IndexType>(*ctx_);
    gpu_sim::lower_bound(sorted_cols, needles, csc_offsets_);
    csc_valid_ = true;
  }

  void bounds_check(IndexType i, IndexType j) const {
    if (i >= nrows_ || j >= ncols_)
      throw IndexOutOfBoundsException("matrix element access");
  }

  /// Position of (i, j) in the value array, or kNotFound. Downloads the
  /// row's slice of column indices (accounted), then binary-searches.
  IndexType find_position(IndexType i, IndexType j) const {
    IndexType bounds[2];
    ctx_->copy_d2h(bounds, row_offsets_.data() + i, 2 * sizeof(IndexType));
    const IndexType lo = bounds[0], hi = bounds[1];
    if (lo == hi) return kNotFound;
    std::vector<IndexType> cols(hi - lo);
    ctx_->copy_d2h(cols.data(), col_indices_.data() + lo,
                   (hi - lo) * sizeof(IndexType));
    auto it = std::lower_bound(cols.begin(), cols.end(), j);
    if (it != cols.end() && *it == j)
      return lo + static_cast<IndexType>(it - cols.begin());
    return kNotFound;
  }

  IndexType nrows_ = 0;
  IndexType ncols_ = 0;
  gpu_sim::Context* ctx_ = nullptr;
  gpu_sim::device_vector<IndexType> row_offsets_;
  gpu_sim::device_vector<IndexType> col_indices_;
  gpu_sim::device_vector<T> values_;

  // Lazily-cached transpose (CSC) view; see ensure_csc().
  mutable bool csc_valid_ = false;
  mutable gpu_sim::device_vector<IndexType> csc_offsets_;
  mutable gpu_sim::device_vector<IndexType> csc_rows_;
  mutable gpu_sim::device_vector<T> csc_vals_;

  // Lazily-cached bit-format views (see ensure_bits()); both orientations
  // share the CSC cache's invalidation sites and copy/move discipline.
  mutable BitView bit_rows_;
  mutable BitView bit_cols_;
};

}  // namespace grb::gpu_backend
