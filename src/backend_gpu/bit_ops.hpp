#pragma once

/// @file backend_gpu/bit_ops.hpp
/// Word-granularity device kernels over the Bit format
/// (sparse/bitmap.hpp): bitmap packing for vectors and masks, the
/// AND/OR gather that serves mxv and pull-direction vxm on
/// `LogicalSemiring`, and the AND-popcount masked-mxm path feeding
/// triangle counting. All kernels traffic in 64-bit words — the declared
/// LaunchStats charge `8 · words` bytes per plane, and the gathers account
/// post hoc for the words they actually touched (the CSR pull kernel's
/// exact-accounting precedent). Host counterparts with identical word
/// semantics live in backend_sequential/bit_ops.hpp and
/// backend_cpupar/bit_ops.hpp.

#include <cstdint>

#include "backend_gpu/matrix.hpp"
#include "backend_gpu/vector.hpp"
#include "gbtl/algebra.hpp"
#include "sparse/bitmap.hpp"
#include "sparse/output_pipeline.hpp"

namespace grb::gpu_backend::detail {

/// The Bit traversal path is exact only for the boolean or-and semiring:
/// its fold is order-independent (OR), its products are truthiness tests
/// (AND), and its stored output values are confined to {0, 1} — precisely
/// what the two bitplanes encode.
template <typename SR>
inline constexpr bool is_logical_semiring_v =
    std::is_same_v<SR, grb::LogicalSemiring<typename SR::result_type>>;

/// Pack a vector's presence flags and value truthiness into two word
/// bitmaps (truth ⊆ presence). One launch over the word count; each word
/// gathers its 64 lanes.
template <typename UT>
void build_vector_bits(gpu_sim::Context& ctx, const Vector<UT>& u,
                       gpu_sim::device_vector<std::uint64_t>& pres_words,
                       gpu_sim::device_vector<std::uint64_t>& truth_words) {
  const IndexType n = u.size();
  const IndexType nwords = static_cast<IndexType>(sparse::bit_words(n));
  pres_words = gpu_sim::device_vector<std::uint64_t>(nwords, ctx);
  truth_words = gpu_sim::device_vector<std::uint64_t>(nwords, ctx);
  const std::uint8_t* up = u.present().data();
  const UT* uv = u.values().data();
  std::uint64_t* pw = pres_words.data();
  std::uint64_t* tw = truth_words.data();
  ctx.launch_n(nwords,
               gpu_sim::LaunchStats{2 * n, n * (1 + sizeof(UT)), nwords * 16},
               [=](std::size_t w) {
                 std::uint64_t pword = 0, tword = 0;
                 const IndexType base =
                     static_cast<IndexType>(w) * sparse::kBitWordBits;
                 const IndexType end =
                     std::min<IndexType>(base + sparse::kBitWordBits, n);
                 for (IndexType i = base; i < end; ++i) {
                   if (!up[i]) continue;
                   const std::uint64_t bit = std::uint64_t{1} << (i - base);
                   pword |= bit;
                   if (uv[i] != UT{}) tword |= bit;
                 }
                 pw[w] = pword;
                 tw[w] = tword;
               });
}

/// Pack mask-allowed destinations into a word bitmap — the masked apply as
/// a word op. Reuses the byte-flag lowering (complement / structural /
/// no-mask handling) and packs 64 flags per word.
template <typename MObj>
gpu_sim::device_vector<std::uint64_t> build_mask_bits(
    gpu_sim::Context& ctx, const OutputDescriptor<MObj>& out, IndexType n) {
  auto flags = pipeline::vector_mask_flags(ctx, out.mask, n);
  const IndexType nwords = static_cast<IndexType>(sparse::bit_words(n));
  gpu_sim::device_vector<std::uint64_t> words(nwords, ctx);
  const std::uint8_t* f = flags.data();
  std::uint64_t* wv = words.data();
  ctx.launch_n(nwords, gpu_sim::LaunchStats{n, n, nwords * 8},
               [=](std::size_t w) {
                 std::uint64_t word = 0;
                 const IndexType base =
                     static_cast<IndexType>(w) * sparse::kBitWordBits;
                 const IndexType end =
                     std::min<IndexType>(base + sparse::kBitWordBits, n);
                 for (IndexType i = base; i < end; ++i)
                   if (f[i]) word |= std::uint64_t{1} << (i - base);
                 wv[w] = word;
               });
  return words;
}

/// The word gather at the heart of the Bit traversal: for each destination
/// row (extracted from the destination bitmap by ffs, or all rows when
/// dwords is null), AND the view's word row against the frontier's
/// presence/truth bitmaps. Zero frontier words are skipped without reading
/// the matrix row at all — `srow & 0` can contribute to neither plane, and
/// the frontier bitmap is block-shared on real hardware (a few hundred
/// words serving every row), so a thin frontier costs each row only its
/// populated words, not the full width. A truth hit saturates the OR
/// fold — truth ⊆ structure, so presence is implied and the scan exits the
/// row early (counted with the pull kernel's early-exit rows). A
/// structure-only hit cannot exit: a later word may still carry a truth
/// hit that flips the output value from stored-false to true.
///
/// Runs serially in the simulation (one thread per destination row on real
/// hardware) and accounts post hoc for the words actually touched:
/// per read matrix word the view planes, once overall the frontier bitmaps
/// (shared), per destination its bitmap word, per written output the
/// value + presence.
template <typename ZT>
void bit_gather(gpu_sim::Context& ctx,
                const std::uint64_t* view_structure,
                const std::uint64_t* view_truth, IndexType stride,
                bool view_all_truthy, IndexType dest_rows, IndexType width,
                const std::uint64_t* upres, const std::uint64_t* utruth,
                const std::uint64_t* dwords, ZT* tv, std::uint8_t* tp) {
  const IndexType wwords = static_cast<IndexType>(sparse::bit_words(width));
  const std::uint64_t planes = view_all_truthy ? 1 : 2;
  std::uint64_t words_touched = 0, wrote = 0, early_rows = 0, visited = 0;
  const IndexType dest_words =
      static_cast<IndexType>(sparse::bit_words(dest_rows));
  for (IndexType dw = 0; dw < dest_words; ++dw) {
    std::uint64_t dword =
        dwords ? dwords[dw] : (dw + 1 < dest_words
                                   ? ~std::uint64_t{0}
                                   : sparse::bit_tail_mask(dest_rows));
    while (dword) {
      const IndexType j = dw * sparse::kBitWordBits + sparse::bit_ffs(dword);
      dword &= dword - 1;
      ++visited;
      const std::uint64_t* srow = view_structure + j * stride;
      const std::uint64_t* trow = view_truth + j * stride;
      bool pres = false, truth = false;
      IndexType w = 0;
      for (; w < wwords; ++w) {
        const std::uint64_t uw = upres[w];
        if (uw == 0) continue;  // empty frontier word: matrix row unread
        ++words_touched;
        if (srow[w] & uw) pres = true;
        if (trow[w] & utruth[w]) {
          truth = true;
          ++w;
          break;
        }
      }
      if (w < wwords) ++early_rows;
      if (pres) {
        tv[j] = static_cast<ZT>(truth ? 1 : 0);
        tp[j] = 1;
        ++wrote;
      }
    }
  }
  ctx.account_kernel(gpu_sim::LaunchStats{
      2 * words_touched + visited,
      dest_words * 8 + wwords * 16 + words_touched * 8 * planes,
      wrote * (sizeof(ZT) + 1)});
  ctx.note_bit_selection(words_touched);
  ctx.note_pull_early_exit_rows(early_rows);
}

/// Word-wise AND-popcount masked mxm: for each mask-allowed (i, j),
/// C(i, j) = popcount(rowbits_A(i) & rowbits_Bᵀ(j)) — the number of shared
/// inner-dimension neighbours, which equals the arithmetic-semiring sum of
/// products when every stored value is 1 (the caller's exactness gate).
/// Zero counts are dropped: no overlapping pair means no product, so the
/// entry is absent by GraphBLAS semantics, matching the CSR engines.
/// Emits (flattened key, value) pairs in ascending (i, j) order, ready for
/// pipeline::write_matrix.
template <typename ZT, typename MV>
void bit_mxm_popcount(gpu_sim::Context& ctx, const std::uint64_t* arows,
                      IndexType astride, const std::uint64_t* btrows,
                      IndexType bstride, IndexType inner_dim,
                      const IndexType* moffs, const IndexType* mcols,
                      const MV* mvals, bool structural, IndexType nrows,
                      IndexType c_ncols,
                      gpu_sim::device_vector<IndexType>& u_keys,
                      gpu_sim::device_vector<ZT>& u_vals) {
  const IndexType kwords =
      static_cast<IndexType>(sparse::bit_words(inner_dim));
  const IndexType m_nnz = moffs[nrows];
  u_keys = gpu_sim::device_vector<IndexType>(m_nnz, ctx);
  u_vals = gpu_sim::device_vector<ZT>(m_nnz, ctx);
  IndexType* ok = u_keys.data();
  ZT* ov = u_vals.data();
  std::uint64_t out = 0, allowed = 0;
  for (IndexType i = 0; i < nrows; ++i) {
    const std::uint64_t* arow = arows + i * astride;
    for (IndexType q = moffs[i]; q < moffs[i + 1]; ++q) {
      if (!(structural || static_cast<bool>(mvals[q]))) continue;
      ++allowed;
      const IndexType j = mcols[q];
      const std::uint64_t* brow = btrows + j * bstride;
      std::uint64_t count = 0;
      for (IndexType w = 0; w < kwords; ++w)
        count += sparse::bit_popcount(arow[w] & brow[w]);
      if (count == 0) continue;
      ok[out] = i * c_ncols + j;
      ov[out] = static_cast<ZT>(count);
      ++out;
    }
  }
  u_keys.resize(static_cast<IndexType>(out));
  u_vals.resize(static_cast<IndexType>(out));
  const std::uint64_t words_touched = allowed * 2 * kwords;
  ctx.account_kernel(gpu_sim::LaunchStats{
      2 * words_touched + m_nnz,
      m_nnz * (sizeof(IndexType) + sizeof(MV)) +
          (nrows + 1) * sizeof(IndexType) + words_touched * 8,
      out * (sizeof(IndexType) + sizeof(ZT))});
  ctx.note_bit_selection(words_touched);
}

}  // namespace grb::gpu_backend::detail
