#pragma once

/// @file backend_gpu/ops.hpp
/// GPU-backend implementations of the GraphBLAS operations as simulated
/// device pipelines, mirroring how the paper's CUDA backend composed
/// Thrust/CUSP primitives:
///   - mxm is an adaptive SpGEMM engine (sparse/spgemm_select.hpp): ESC
///     (Expansion, Sorting, Contraction) with an optional pre-sort mask
///     filter (the masked early-exit of Abl. B), or a row-wise
///     hash-Gustavson accumulate with mask-seeded tables, chosen per call
///     from the symbolic pass's compression/skew summary;
///   - mxv is a row-parallel CSR SpMV kernel;
///   - vxm is an atomic-scatter push kernel (simulated serially, modeled at
///     full throughput);
///   - element-wise ops are search+compact pipelines over sorted COO keys;
///   - rare structural ops (extract/assign on matrices, kronecker, select on
///     matrices) fall back to the host with fully accounted transfers — the
///     documented GBTL-CUDA practice for operations without device kernels.

#include <algorithm>
#include <type_traits>
#include <vector>

#include "backend_gpu/bit_ops.hpp"
#include "backend_gpu/matrix.hpp"
#include "backend_gpu/vector.hpp"
#include "backend_sequential/ops.hpp"
#include "gbtl/algebra.hpp"
#include "gbtl/mask.hpp"
#include "gbtl/types.hpp"
#include "gbtl/write_rules.hpp"
#include "gpu_sim/algorithms.hpp"
#include "sparse/fusion_plan.hpp"
#include "sparse/output_pipeline.hpp"
#include "sparse/spgemm_select.hpp"
#include "sparse/spmv_select.hpp"

namespace grb::gpu_backend {

namespace detail {

using gpu_sim::Context;
using gpu_sim::device_vector;
using gpu_sim::Dim3;
using gpu_sim::LaunchStats;

/// Run a body as a single-thread kernel: the stand-in for kernels whose
/// real-CUDA form relies on atomics or merge-path partitioning that the
/// functional simulation runs serially. The declared stats still model the
/// parallel device cost.
template <typename Body>
void serial_kernel(Context& ctx, const LaunchStats& stats, Body&& body) {
  ctx.launch(Dim3{1}, Dim3{1}, stats,
             [&](const gpu_sim::ThreadId&) { body(); });
}

// Mask plumbing, COO key expansion, and the masked-accumulate write-back
// epilogues all live in the shared output pipeline (grb::pipeline in
// sparse/output_pipeline.hpp); the op bodies below only compute T̃.

// --------------------------------------------------------------------------
// Host fallback plumbing (for ops without device pipelines)
// --------------------------------------------------------------------------

template <typename T>
seq_backend::Matrix<T> download(const Matrix<T>& A) {
  seq_backend::Matrix<T> out(A.nrows(), A.ncols());
  IndexArrayType r, c;
  std::vector<T> v;
  A.extract_tuples(r, c, v);  // accounted D2H
  out.build(r, c, v.begin(), static_cast<IndexType>(v.size()),
            [](const T&, const T& b) { return b; });
  return out;
}

template <typename T>
void upload(Matrix<T>& dst, const seq_backend::Matrix<T>& src) {
  IndexArrayType r, c;
  std::vector<T> v;
  src.extract_tuples(r, c, v);
  dst.build(r, c, v.begin(), static_cast<IndexType>(v.size()),
            [](const T&, const T& b) { return b; });  // accounted H2D
}

template <typename T>
seq_backend::Vector<T> download(const Vector<T>& u) {
  seq_backend::Vector<T> out(u.size());
  IndexArrayType idx;
  std::vector<T> v;
  u.extract_tuples(idx, v);
  out.build(idx, v.begin(), static_cast<IndexType>(v.size()),
            [](const T&, const T& b) { return b; });
  return out;
}

template <typename T>
void upload(Vector<T>& dst, const seq_backend::Vector<T>& src) {
  IndexArrayType idx;
  std::vector<T> v;
  src.extract_tuples(idx, v);
  dst.clear();
  dst.build(idx, v.begin(), static_cast<IndexType>(v.size()),
            [](const T&, const T& b) { return b; });
}

/// Lower a GPU output descriptor to a sequential one for fallback
/// execution: the (matrix) mask is downloaded to the host, the
/// complement/structural/replace flags carry over unchanged.
template <typename MObj, typename Fn>
decltype(auto) with_seq_output(const OutputDescriptor<MObj>& out, Fn&& fn) {
  if constexpr (std::is_same_v<MObj, EmptyMaskObj>) {
    return fn(NoMaskOutputDesc{{}, out.replace});
  } else {
    using MV = typename MObj::ScalarType;
    if (out.mask.mask == nullptr) return fn(NoMaskOutputDesc{{}, out.replace});
    seq_backend::Matrix<MV> host_mask = download(*out.mask.mask);
    OutputDescriptor<seq_backend::Matrix<MV>> desc{
        {&host_mask, out.mask.complement, out.mask.structural}, out.replace};
    return fn(desc);
  }
}

// --------------------------------------------------------------------------
// Lazy op-DAG recording (sparse/fusion_plan.hpp)
// --------------------------------------------------------------------------
//
// Whitelisted vector ops record themselves into the calling thread's OpDag
// and return; the replay closure re-invokes the same op, which falls through
// to its eager body because the dag is draining (record_op returns false).
// Bounds validation stays ahead of the record so errors surface eagerly at
// the call site, exactly as before. Every op NOT whitelisted drains the dag
// at entry — matrix-writing ops could otherwise invalidate operands of
// pending recorded reads.

/// Container address of a vector/matrix mask for the planner's dependency
/// scan (nullptr when unmasked).
template <typename MObj>
const void* mask_addr(const OutputDescriptor<MObj>& out) {
  if constexpr (std::is_same_v<MObj, EmptyMaskObj>)
    return nullptr;
  else
    return static_cast<const void*>(out.mask.mask);
}

}  // namespace detail

// ===========================================================================
// mxm — adaptive SpGEMM: ESC (expansion / sorting / contraction) vs.
// row-wise hash-Gustavson, selected per call by sparse/spgemm_select.hpp
// ===========================================================================

namespace detail {

/// ESC numeric phase: materialize every (key, product) pair, optionally
/// pre-filter against a non-complemented mask before paying for the sort
/// (the masked early-exit of Abl. B), then radix-sort and contract.
template <typename ZT, typename MObj, typename SR, typename AT, typename BT,
          typename AMat, typename BMat>
void mxm_esc(Context& ctx, const AMat& A, const BMat& B, IndexType c_ncols,
             const OutputDescriptor<MObj>& out, SR sr,
             const device_vector<IndexType>& expand_offsets,
             IndexType total_products, device_vector<IndexType>& u_keys,
             device_vector<ZT>& u_vals) {
  const IndexType nnz_a = A.nvals();

  // --- Expansion: emit (key, product) pairs. ------------------------------
  device_vector<IndexType> keys(total_products, ctx);
  device_vector<ZT> vals(total_products, ctx);
  {
    auto a_keys = pipeline::coo_keys(A);
    const IndexType* ak = a_keys.data();
    const AT* avals = A.values().data();
    const IndexType* acols = A.col_indices().data();
    const IndexType* boffs = B.row_offsets().data();
    const IndexType* bcols = B.col_indices().data();
    const BT* bvals = B.values().data();
    const IndexType* eoffs = expand_offsets.data();
    IndexType* ok = keys.data();
    ZT* ov = vals.data();
    const IndexType a_ncols = A.ncols();
    const SR sem = sr;
    const std::uint64_t traffic =
        total_products * (sizeof(IndexType) + sizeof(ZT) + sizeof(BT)) +
        nnz_a * (2 * sizeof(IndexType) + sizeof(AT));
    ctx.launch_n(nnz_a, LaunchStats{2 * total_products, traffic,
                                    total_products *
                                        (sizeof(IndexType) + sizeof(ZT))},
                 [=](std::size_t p) {
                   const IndexType i = ak[p] / a_ncols;
                   const IndexType k = acols[p];
                   const AT av = avals[p];
                   IndexType slot = eoffs[p];
                   for (IndexType q = boffs[k]; q < boffs[k + 1]; ++q) {
                     ok[slot] = i * c_ncols + bcols[q];
                     ov[slot] = sem.mult(av, bvals[q]);
                     ++slot;
                   }
                 });
  }

  // --- Masked early exit (Abl. B): drop products outside the mask before
  // paying for the sort. Only valid for non-complemented masks.
  if constexpr (!std::is_same_v<MObj, EmptyMaskObj>) {
    if (out.mask.mask != nullptr && !out.mask.complement) {
      auto probe = pipeline::matrix_mask_probe(out.mask);
      device_vector<std::uint8_t> flags(total_products, ctx);
      const IndexType* kk = keys.data();
      std::uint8_t* fl = flags.data();
      // ~log(row nnz) search per product.
      ctx.launch_n(total_products,
                   LaunchStats{8 * total_products,
                               total_products * 8 * sizeof(IndexType),
                               total_products},
                   [=](std::size_t p) {
                     fl[p] = probe(kk[p] / c_ncols, kk[p] % c_ncols) ? 1 : 0;
                   });
      device_vector<IndexType> kept_keys(ctx);
      device_vector<ZT> kept_vals(ctx);
      const std::uint64_t kept =
          gpu_sim::copy_flagged(keys, flags, kept_keys);
      gpu_sim::copy_flagged(vals, flags, kept_vals);
      keys = std::move(kept_keys);
      vals = std::move(kept_vals);
      ctx.note_spgemm_masked_products_avoided(total_products - kept);
    }
  }

  // --- Sorting + contraction. ---------------------------------------------
  gpu_sim::sort_by_key(keys, vals);
  const SR sem = sr;
  gpu_sim::reduce_by_key(keys, vals, u_keys, u_vals,
                         [sem](ZT a, ZT b) { return sem.add(a, b); });
}

/// Hash-Gustavson numeric phase: per output row an open-addressing table
/// sized by the symbolic pass absorbs the partial products as they are
/// produced — no materialized expansion, no sort. Rows are binned by FLOP
/// count (short / medium / long, long rows split into fixed-FLOP chunks
/// across virtual workers) so SIMT lockstep is charged per bin, not across
/// the whole skewed row distribution. Under a non-complemented mask the
/// tables are pre-seeded with the rows' allowed columns and a product whose
/// key is absent is dropped at probe time — disallowed entries are never
/// inserted.
///
/// Bit-exactness: products of one output slot arrive in ascending A-column
/// order (p ascending, then q ascending) and fold left with the first
/// product stored directly — the exact combination order of ESC's stable
/// sort + reduce_by_key, so the strategies agree bit-for-bit.
template <typename ZT, typename MObj, typename SR, typename AT, typename BT,
          typename AMat, typename BMat>
void mxm_hash(Context& ctx, const AMat& A, const BMat& B, IndexType c_ncols,
              const OutputDescriptor<MObj>& out, SR sr,
              const device_vector<IndexType>& row_flops,
              const device_vector<IndexType>& row_caps, bool seeded,
              device_vector<IndexType>& u_keys, device_vector<ZT>& u_vals) {
  const IndexType nrows = A.nrows();
  constexpr std::uint64_t kHashMult = 0x9E3779B97F4A7C15ull;
  const std::uint64_t slot_bytes = sizeof(IndexType) + sizeof(ZT) + 1;

  // --- Table sizing from the symbolic bounds. -----------------------------
  device_vector<IndexType> slot_counts(nrows, ctx);
  {
    const IndexType* rf = row_flops.data();
    const IndexType* rc = row_caps.data();
    IndexType* sc = slot_counts.data();
    ctx.launch_n(nrows,
                 LaunchStats{4 * nrows, 2 * nrows * sizeof(IndexType),
                             nrows * sizeof(IndexType)},
                 [=](std::size_t i) {
                   sc[i] = rf[i] > 0 ? sparse::hash_table_slots(rc[i]) : 0;
                 });
  }
  device_vector<IndexType> table_offsets(ctx);
  const IndexType total_slots =
      gpu_sim::exclusive_scan(slot_counts, table_offsets);

  device_vector<IndexType> tkeys(total_slots, ctx);
  device_vector<ZT> tvals(total_slots, ctx);
  // Slot state: 0 = empty, 1 = mask seed (no value yet), 2 = filled.
  device_vector<std::uint8_t> tstate(total_slots, ctx);
  gpu_sim::fill(tstate, std::uint8_t{0});

  const IndexType* sc = slot_counts.data();
  const IndexType* toffs = table_offsets.data();
  IndexType* tk = tkeys.data();
  ZT* tv = tvals.data();
  std::uint8_t* ts = tstate.data();

  // --- Mask seeding: insert each row's allowed columns as empty-valued
  // seeds. Seeds are distinct, so insertion always lands within cap probes.
  if constexpr (!std::is_same_v<MObj, EmptyMaskObj>) {
    if (seeded && out.mask.mask != nullptr) {
      using MV = typename MObj::ScalarType;
      const IndexType* moffs = out.mask.mask->row_offsets().data();
      const IndexType* mcols = out.mask.mask->col_indices().data();
      const MV* mvals = out.mask.mask->values().data();
      const bool structural = out.mask.structural;
      const IndexType m_nnz = out.mask.mask->nvals();
      ctx.launch_n(
          nrows,
          LaunchStats{2 * m_nnz,
                      nrows * 3 * sizeof(IndexType) +
                          m_nnz * (sizeof(IndexType) + sizeof(MV)),
                      m_nnz * (sizeof(IndexType) + 1)},
          [=](std::size_t i) {
            const IndexType cap = sc[i];
            if (cap == 0) return;
            const IndexType base = toffs[i];
            for (IndexType q = moffs[i]; q < moffs[i + 1]; ++q) {
              if (!structural && !static_cast<bool>(mvals[q])) continue;
              const IndexType j = mcols[q];
              IndexType slot =
                  static_cast<IndexType>((j * kHashMult) & (cap - 1));
              while (ts[base + slot] != 0)
                slot = (slot + 1) & (cap - 1);
              tk[base + slot] = j;
              ts[base + slot] = 1;
            }
          });
    }
  }

  // --- Row binning by FLOP count. The bin lists are built by one streaming
  // pass over the per-row bounds (read in place, charged below); per-bin
  // work sums feed the bin launches' declared stats.
  std::vector<IndexType> short_bin, medium_bin, long_bin;
  std::uint64_t medium_work = 0, long_work = 0, long_chunks = 0;
  std::uint64_t spilled_products = 0;
  {
    const IndexType* rf = row_flops.data();
    for (IndexType i = 0; i < nrows; ++i) {
      const IndexType f = rf[i];
      if (f == 0) continue;
      if (f <= sparse::kShortRowMaxFlops) {
        short_bin.push_back(i);
      } else if (f <= sparse::kMediumRowMaxFlops) {
        medium_bin.push_back(i);
        medium_work += ((f + 31) / 32) * 32;
      } else {
        long_bin.push_back(i);
        long_work += f;
        long_chunks += (f + sparse::kLongRowChunkFlops - 1) /
                       sparse::kLongRowChunkFlops;
      }
      if (sc[i] > sparse::kOnChipTableSlots) spilled_products += f;
    }
    ctx.account_kernel(LaunchStats{
        2 * nrows, 2 * nrows * sizeof(IndexType), 6 * nrows});
  }

  // --- Numeric pass: per-row produced/collision/avoided tallies. ----------
  device_vector<IndexType> produced(nrows, ctx);
  device_vector<IndexType> collisions(nrows, ctx);
  device_vector<IndexType> avoided(nrows, ctx);
  gpu_sim::fill(produced, IndexType{0});
  gpu_sim::fill(collisions, IndexType{0});
  gpu_sim::fill(avoided, IndexType{0});

  const IndexType* aoffs = A.row_offsets().data();
  const IndexType* acols = A.col_indices().data();
  const AT* avals = A.values().data();
  const IndexType* boffs = B.row_offsets().data();
  const IndexType* bcols = B.col_indices().data();
  const BT* bvals = B.values().data();
  IndexType* prod_n = produced.data();
  IndexType* coll_n = collisions.data();
  IndexType* avoid_n = avoided.data();
  const SR sem = sr;
  const bool drop_unseeded = seeded;

  const auto process_row = [=](IndexType i) {
    const IndexType cap = sc[i];
    const IndexType base = toffs[i];
    IndexType n_prod = 0, n_coll = 0, n_avoid = 0;
    for (IndexType p = aoffs[i]; p < aoffs[i + 1]; ++p) {
      const IndexType k = acols[p];
      const AT av = avals[p];
      for (IndexType q = boffs[k]; q < boffs[k + 1]; ++q) {
        if (cap == 0) {  // masked row with no allowed columns
          ++n_avoid;
          continue;
        }
        const IndexType j = bcols[q];
        const ZT prod = sem.mult(av, bvals[q]);
        IndexType slot =
            static_cast<IndexType>((j * kHashMult) & (cap - 1));
        bool placed = false;
        for (IndexType step = 0; step < cap; ++step) {
          const std::uint8_t state = ts[base + slot];
          if (state == 0) {
            if (drop_unseeded) break;  // key not among the mask's seeds
            tk[base + slot] = j;
            tv[base + slot] = prod;
            ts[base + slot] = 2;
            ++n_prod;
            placed = true;
            break;
          }
          if (tk[base + slot] == j) {
            if (state == 1) {
              tv[base + slot] = prod;
              ts[base + slot] = 2;
              ++n_prod;
            } else {
              tv[base + slot] = sem.add(tv[base + slot], prod);
            }
            placed = true;
            break;
          }
          ++n_coll;
          slot = (slot + 1) & (cap - 1);
        }
        if (!placed && drop_unseeded) ++n_avoid;
      }
    }
    prod_n[i] += n_prod;
    coll_n[i] += n_coll;
    avoid_n[i] += n_avoid;
  };

  const std::uint64_t row_side = 4 * sizeof(IndexType) + sizeof(AT);
  const std::uint64_t product_side =
      sizeof(IndexType) + sizeof(BT) + sizeof(ZT) + 1;
  if (!short_bin.empty()) {
    // One thread per row; a warp retires at its heaviest row's pace.
    const IndexType* rf = row_flops.data();
    const IndexType* bin = short_bin.data();
    const std::uint64_t slots = gpu_sim::warp_padded_items(
        short_bin.size(), ctx.properties().warp_size,
        [&](std::size_t t) { return rf[bin[t]]; });
    ctx.launch_n(short_bin.size(),
                 LaunchStats{4 * slots,
                             short_bin.size() * row_side +
                                 slots * product_side,
                             slots * (sizeof(ZT) + 1)},
                 [=](std::size_t t) { process_row(bin[t]); });
  }
  if (!medium_bin.empty()) {
    // One warp per row: work rounds up to warp granules, no cross-row pad.
    const IndexType* bin = medium_bin.data();
    ctx.launch_n(medium_bin.size(),
                 LaunchStats{4 * medium_work,
                             medium_bin.size() * row_side +
                                 medium_work * product_side,
                             medium_work * (sizeof(ZT) + 1)},
                 [=](std::size_t t) { process_row(bin[t]); });
  }
  if (!long_bin.empty()) {
    // Virtual workers: fixed-FLOP chunks, flat traffic plus per-chunk
    // scheduling arithmetic; spilled tables pay global probe sectors.
    const IndexType* bin = long_bin.data();
    ctx.launch_n(long_bin.size(),
                 LaunchStats{4 * long_work + 16 * long_chunks,
                             long_bin.size() * row_side +
                                 long_work * product_side +
                                 2 * spilled_products *
                                     sparse::kProbeSectorBytes,
                             long_work * (sizeof(ZT) + 1)},
                 [=](std::size_t t) { process_row(bin[t]); });
  }

  // --- Extraction: gather each row's filled slots in column order. Rows
  // are emitted in ascending order, so the output keys are globally sorted
  // — the same contract the ESC contraction hands to write_matrix.
  device_vector<IndexType> out_offsets(ctx);
  const IndexType total_out = gpu_sim::exclusive_scan(produced, out_offsets);
  u_keys.resize(total_out);
  u_vals.resize(total_out);
  {
    const IndexType* ooffs = out_offsets.data();
    IndexType* ok = u_keys.data();
    ZT* ov = u_vals.data();
    ctx.launch_n(
        nrows,
        LaunchStats{4 * total_out + total_slots,
                    total_slots * slot_bytes,
                    total_out * (sizeof(IndexType) + sizeof(ZT))},
        [=](std::size_t i) {
          const IndexType cap = sc[i];
          if (cap == 0) return;
          const IndexType base = toffs[i];
          std::vector<IndexType> cols_found;
          cols_found.reserve(prod_n[i]);
          for (IndexType s = 0; s < cap; ++s)
            if (ts[base + s] == 2) cols_found.push_back(s);
          std::sort(cols_found.begin(), cols_found.end(),
                    [&](IndexType a, IndexType b) {
                      return tk[base + a] < tk[base + b];
                    });
          IndexType o = ooffs[i];
          for (const IndexType s : cols_found) {
            ok[o] = static_cast<IndexType>(i) * c_ncols + tk[base + s];
            ov[o] = tv[base + s];
            ++o;
          }
        });
  }

  ctx.note_spgemm_hash(gpu_sim::reduce_sum(collisions),
                       total_slots * slot_bytes);
  if (seeded)
    ctx.note_spgemm_masked_products_avoided(gpu_sim::reduce_sum(avoided));
}

}  // namespace detail

template <typename CT, typename MObj, typename Accum, typename SR,
          typename AT, typename BT>
void mxm(Matrix<CT>& C, const OutputDescriptor<MObj>& out, Accum accum, SR sr,
         const Matrix<AT>& A, const Matrix<BT>& B) {
  sparse::fusion_sync_all();  // not whitelisted: writes a matrix eagerly
  using detail::LaunchStats;
  using ZT = typename SR::result_type;
  gpu_sim::Context& ctx = C.context();

  const IndexType nnz_a = A.nvals();
  const IndexType nrows = A.nrows();
  const IndexType c_ncols = C.ncols();

  // --- Symbolic pass (shared by both strategies). -------------------------
  // Expansion sizing: products contributed by each A-nonzero.
  gpu_sim::device_vector<IndexType> expand_counts(nnz_a, ctx);
  {
    const IndexType* acols = A.col_indices().data();
    const IndexType* boffs = B.row_offsets().data();
    IndexType* cnt = expand_counts.data();
    ctx.launch_n(nnz_a,
                 LaunchStats{nnz_a, nnz_a * 3 * sizeof(IndexType),
                             nnz_a * sizeof(IndexType)},
                 [=](std::size_t p) {
                   const IndexType k = acols[p];
                   cnt[p] = boffs[k + 1] - boffs[k];
                 });
  }
  // Overflow guard: the grand total is accumulated in 64 bits and checked
  // against IndexType before the scan's result is used to address buffers.
  sparse::checked_product_total<IndexType>(expand_counts.data(), nnz_a,
                                           "mxm");
  gpu_sim::device_vector<IndexType> expand_offsets(ctx);
  const IndexType total_products =
      gpu_sim::exclusive_scan(expand_counts, expand_offsets);

  // Per-row FLOP bounds, recovered from the exclusive expansion offsets.
  gpu_sim::device_vector<IndexType> row_flops(nrows, ctx);
  {
    const IndexType* aoffs = A.row_offsets().data();
    const IndexType* eoffs = expand_offsets.data();
    IndexType* rf = row_flops.data();
    const IndexType na = nnz_a;
    const IndexType total = total_products;
    ctx.launch_n(nrows,
                 LaunchStats{2 * nrows, nrows * 4 * sizeof(IndexType),
                             nrows * sizeof(IndexType)},
                 [=](std::size_t i) {
                   const IndexType b = aoffs[i], e = aoffs[i + 1];
                   const IndexType lo = b < na ? eoffs[b] : total;
                   const IndexType hi = e < na ? eoffs[e] : total;
                   rf[i] = hi - lo;
                 });
  }

  // Per-row output-nnz caps: the column count unmasked; the allowed-entry
  // count of the mask row when a non-complemented mask can seed the hash
  // tables (a complemented mask cannot bound the output, so it only acts at
  // write-back).
  bool seeded = false;
  gpu_sim::device_vector<IndexType> row_caps(nrows, ctx);
  if constexpr (!std::is_same_v<MObj, EmptyMaskObj>) {
    if (out.mask.mask != nullptr && !out.mask.complement) {
      seeded = true;
      using MV = typename MObj::ScalarType;
      const IndexType* moffs = out.mask.mask->row_offsets().data();
      const MV* mvals = out.mask.mask->values().data();
      const bool structural = out.mask.structural;
      const IndexType m_nnz = out.mask.mask->nvals();
      IndexType* rc = row_caps.data();
      ctx.launch_n(nrows,
                   LaunchStats{m_nnz + nrows,
                               nrows * 2 * sizeof(IndexType) +
                                   m_nnz * sizeof(MV),
                               nrows * sizeof(IndexType)},
                   [=](std::size_t i) {
                     IndexType allowed = 0;
                     for (IndexType q = moffs[i]; q < moffs[i + 1]; ++q)
                       if (structural || static_cast<bool>(mvals[q]))
                         ++allowed;
                     rc[i] = allowed;
                   });
    }
  }
  if (!seeded) {
    const IndexType* rf = row_flops.data();
    IndexType* rc = row_caps.data();
    const IndexType nc = c_ncols;
    ctx.launch_n(nrows,
                 LaunchStats{nrows, nrows * sizeof(IndexType),
                             nrows * sizeof(IndexType)},
                 [=](std::size_t i) {
                   rc[i] = std::min<IndexType>(rf[i], nc);
                 });
  }

  // --- Selection: fold the per-row bounds into the symbolic summary (read
  // in place, charged as one streaming pass) and let the selector propose /
  // the roofline model ratify.
  ctx.account_kernel(
      LaunchStats{2 * nrows, 2 * nrows * sizeof(IndexType), 64});
  const sparse::AdaptiveSpgemm sel(row_flops.data(), row_caps.data(), nrows,
                                   c_ncols, seeded, sizeof(ZT),
                                   &ctx.properties());
  ctx.note_spgemm_selection(sel.strategy());

  gpu_sim::device_vector<IndexType> u_keys(ctx);
  gpu_sim::device_vector<ZT> u_vals(ctx);

  // Bit-format bypass: when a non-complemented mask seeds the output, both
  // operands carry only 1-valued entries (the structure-only case — charged
  // inspector below) and the semiring is plus-times, every allowed C(i, j)
  // is exactly popcount(rowbits_A(i) & rowbits_Bᵀ(j)). The masked-triangle
  // workload (tril(A)·tril(A)ᵀ under mask A) hits this shape. The strategy
  // selection above still runs and is still counted — the Bit path competes
  // against (and is ratified by) its estimate.
  bool bit_done = false;
  if constexpr (std::is_same_v<SR, grb::ArithmeticSemiring<ZT>> &&
                !std::is_same_v<MObj, EmptyMaskObj>) {
    const auto bmode = sparse::bit_mode();
    if (bmode != sparse::BitMode::Off && seeded && nnz_a > 0 &&
        B.nvals() > 0) {
      const IndexType nnz_b = B.nvals();
      // All-values-one inspector over both operands: one streaming pass
      // each, same charging as the selector's symbolic fold.
      bool all_one = true;
      const AT* av = A.values().data();
      for (IndexType k = 0; k < nnz_a && all_one; ++k)
        if (av[k] != AT(1)) all_one = false;
      const BT* bv = B.values().data();
      for (IndexType k = 0; k < nnz_b && all_one; ++k)
        if (bv[k] != BT(1)) all_one = false;
      ctx.account_kernel(LaunchStats{
          nnz_a + nnz_b, nnz_a * sizeof(AT) + nnz_b * sizeof(BT), 64});
      if (all_one) {
        const std::uint64_t allowed = gpu_sim::reduce_sum(row_caps);
        const bool views_cached =
            A.bit_cached(/*transpose=*/false) && B.bit_cached(/*transpose=*/true);
        const double csr_time = sparse::estimated_spgemm_time(
            sel.strategy(), sel.symbolic(), sizeof(ZT), ctx.properties());
        if (sparse::select_bit_mxm(bmode, allowed, A.ncols(), nnz_a, nnz_b,
                                   nrows, c_ncols, views_cached, csr_time,
                                   ctx.properties())) {
          const auto& aview = A.bit_row_view();
          const auto& bview = B.bit_col_view();
          using MV = typename MObj::ScalarType;
          detail::bit_mxm_popcount<ZT, MV>(
              ctx, aview.structure.data(), aview.stride,
              bview.structure.data(), bview.stride, A.ncols(),
              out.mask.mask->row_offsets().data(),
              out.mask.mask->col_indices().data(),
              out.mask.mask->values().data(), out.mask.structural, nrows,
              c_ncols, u_keys, u_vals);
          bit_done = true;
        }
      }
    }
  }

  if (bit_done) {
    // handled above
  } else if (sel.strategy() == gpu_sim::SpgemmStrategy::kHash) {
    detail::mxm_hash<ZT, MObj, SR, AT, BT>(ctx, A, B, c_ncols, out, sr,
                                           row_flops, row_caps, seeded,
                                           u_keys, u_vals);
  } else {
    detail::mxm_esc<ZT, MObj, SR, AT, BT>(ctx, A, B, c_ncols, out, sr,
                                          expand_offsets, total_products,
                                          u_keys, u_vals);
  }

  pipeline::write_matrix(C, u_keys, u_vals, out, accum);
}

// ===========================================================================
// mxv / vxm
// ===========================================================================

template <typename WT, typename MObj, typename Accum, typename SR,
          typename AT, typename UT>
void mxv(Vector<WT>& w, const OutputDescriptor<MObj>& out, Accum accum, SR sr,
         const Matrix<AT>& A, const Vector<UT>& u) {
  if (sparse::record_op(sparse::FusedOpKind::kMxv, &w,
                        {&A, &u, detail::mask_addr(out)}, A.nvals(),
                        w.context(),
                        [&w, out, accum, sr, &A, &u] {
                          mxv(w, out, accum, sr, A, u);
                        }))
    return;
  using detail::LaunchStats;
  using ZT = typename SR::result_type;
  gpu_sim::Context& ctx = w.context();
  const IndexType n = A.nrows();
  const IndexType nnz = A.nvals();

  gpu_sim::device_vector<ZT> t_vals(n, ctx);
  gpu_sim::device_vector<std::uint8_t> t_pres(n, ctx);
  gpu_sim::fill(t_pres, std::uint8_t{0});

  const IndexType* offs = A.row_offsets().data();
  const IndexType* cols = A.col_indices().data();
  const AT* avals = A.values().data();
  const UT* uv = u.values().data();
  const std::uint8_t* up = u.present().data();
  ZT* tv = t_vals.data();
  std::uint8_t* tp = t_pres.data();
  const SR sem = sr;

  // Inspector: one streaming pass over the offsets array summarizes the
  // degree distribution and drives kernel selection. The matrix is locked
  // to its device-resident CSR, so only the two CSR schedules compete
  // (allow_format_change = false). Reads device memory in place — no
  // transfers in steady state.
  const auto deg = sparse::analyze_offsets(offs, n, A.ncols(),
                                           ctx.properties().warp_size);
  ctx.account_kernel(
      LaunchStats{n + 1, (n + 1) * sizeof(IndexType), 64});
  const auto kind =
      sparse::select_kernel(deg, /*allow_format_change=*/false,
                            sparse::spmv_mode(), &ctx.properties(),
                            sizeof(ZT));
  const std::uint64_t entry =
      sizeof(IndexType) + sizeof(AT) + sizeof(UT) + 1;

  // Direction selection: the row-parallel gather IS the pull direction for
  // mxv (every output row folds its inputs); the push alternative scatters
  // the sparse u entries through the CSC columns, paying frontier-sized
  // work when u is nearly empty. Auto proposes push only for genuinely
  // sparse inputs (the inverse Beamer test) and the PR-1 roofline model
  // ratifies it against the gather kernel the selector would run.
  auto direction = gpu_sim::TraversalDirection::kPull;
  const auto dmode = sparse::direction_mode();
  const double gather_time =
      sparse::estimated_spmv_time(kind, deg, sizeof(ZT), ctx.properties());
  double csr_time = gather_time;  // whichever CSR engine the dispatch runs
  if (dmode == sparse::DirectionMode::ForcePush) {
    direction = gpu_sim::TraversalDirection::kPush;
  } else if (dmode == sparse::DirectionMode::Auto && nnz > 0) {
    // Probing u's sparsity may cost a (cached) presence recount, so only
    // consider push at all when the gather is heavy enough that a
    // frontier-sized alternative could amortize those fixed launches.
    if (gather_time > 8 * ctx.properties().kernel_launch_overhead_s) {
      sparse::TraversalShape shape;
      shape.frontier_rows = u.nvals();
      shape.frontier_edges =
          A.ncols() > 0 ? shape.frontier_rows * nnz / A.ncols() : 0;
      shape.dest_rows = n;
      shape.dest_edges = nnz;
      shape.n = n;
      shape.nnz = nnz;
      // mxv's push scatters down CSC columns, so here the *push* side owes
      // the transpose build when the cached view is cold.
      double push_time = sparse::estimated_traversal_time(
          gpu_sim::TraversalDirection::kPush, shape, sizeof(ZT),
          ctx.properties());
      if (!A.csc_cached())
        push_time += sparse::estimated_transpose_build_time(
            n, nnz, sizeof(ZT), ctx.properties());
      if (static_cast<double>(shape.frontier_edges) * sparse::kPullAlpha <
              static_cast<double>(nnz) &&
          push_time < gather_time) {
        direction = gpu_sim::TraversalDirection::kPush;
        csr_time = push_time;
      }
    }
  }
  ctx.note_direction_selection(direction);

  // Bit-format bypass: on the logical semiring the whole fold is a word
  // AND/OR over the row bit view against the input's presence/truth
  // bitmaps — exact for every mask/accum combination because it produces
  // the same T̃ (present iff any stored entry meets a present u entry,
  // valued by whether any *truthy* pair met) and hands it to the same
  // write_vector epilogue. Auto prices it against the CSR engine chosen
  // above; Force takes it wherever it is exact.
  if constexpr (detail::is_logical_semiring_v<SR>) {
    const auto bmode = sparse::bit_mode();
    if (bmode != sparse::BitMode::Off) {
      sparse::BitTraversalShape bshape;
      bshape.dest_rows = n;  // the gather computes every row, mask at write
      bshape.n = A.ncols();
      bshape.nnz = nnz;
      bshape.frontier_rows = u.nvals();
      bshape.view_cached = A.bit_cached(/*transpose=*/false);
      bshape.planes =
          bshape.view_cached && A.bit_row_view().all_truthy ? 1 : 2;
      if (sparse::select_bit_traversal(bmode, bshape, csr_time,
                                       ctx.properties())) {
        const auto& view = A.bit_row_view();
        gpu_sim::device_vector<std::uint64_t> upres(ctx), utruth(ctx);
        detail::build_vector_bits(ctx, u, upres, utruth);
        detail::bit_gather<ZT>(
            ctx, view.structure.data(),
            view.all_truthy ? view.structure.data() : view.truth.data(),
            view.stride, view.all_truthy, n, A.ncols(), upres.data(),
            utruth.data(), /*dwords=*/nullptr, tv, tp);
        pipeline::write_vector(w, t_vals, t_pres, out, accum);
        return;
      }
    }
  }

  if (direction == gpu_sim::TraversalDirection::kPush) {
    // Push: scatter each present u entry down its CSC column. Contributions
    // reach row i in ascending column order with a zero-seeded first fold —
    // exactly the gather kernel's combination order, so both directions are
    // bit-identical.
    const auto& frontier = u.sparse_indices();
    const IndexType frontier_rows =
        static_cast<IndexType>(frontier.size());
    const IndexType* fidx = frontier.data();
    const IndexType* coffs = A.col_offsets().data();  // lazy CSC build
    const IndexType* crows = A.csc_row_indices().data();
    const AT* cvals = A.csc_values().data();
    // Frontier-degree inspector over the column offsets.
    std::uint64_t edges = 0;
    for (IndexType r = 0; r < frontier_rows; ++r) {
      const IndexType k = fidx[r];
      edges += coffs[k + 1] - coffs[k];
    }
    ctx.account_kernel(LaunchStats{
        frontier_rows, frontier_rows * 3 * sizeof(IndexType), 64});
    detail::serial_kernel(
        ctx,
        LaunchStats{2 * edges,
                    frontier_rows * (3 * sizeof(IndexType) + sizeof(UT)) +
                        edges * (sizeof(IndexType) + sizeof(AT) +
                                 sizeof(ZT) + 1),
                    edges * (sizeof(ZT) + 1)},
        [&] {
          for (IndexType r = 0; r < frontier_rows; ++r) {
            const IndexType k = fidx[r];
            const UT uval = uv[k];
            for (IndexType q = coffs[k]; q < coffs[k + 1]; ++q) {
              const IndexType i = crows[q];
              const ZT prod = sem.mult(cvals[q], uval);
              if (tp[i]) {
                tv[i] = sem.add(tv[i], prod);
              } else {
                tv[i] = sem.add(sem.zero(), prod);
                tp[i] = 1;
              }
            }
          }
        });
  } else if (kind == gpu_sim::SpmvKernelKind::kCsrLoadBalanced) {
    // Merge-path load-balanced schedule: fixed nnz chunks per team, direct
    // writes for rows owned by one team, spilled partials + serial fixup
    // for boundary rows. Flat traffic in nnz — no warp-padding term.
    const IndexType chunk =
        std::max<IndexType>(sparse::spmv_lb_chunk(), 1);
    const IndexType nteams = (nnz + chunk - 1) / chunk;
    gpu_sim::device_vector<IndexType> partial_row(2 * nteams, ctx);
    gpu_sim::device_vector<ZT> partial_val(2 * nteams, ctx);
    gpu_sim::device_vector<std::uint8_t> partial_any(2 * nteams, ctx);
    // Spill-flag init is fused into the team kernel (its write bytes are in
    // the team LaunchStats); zeroed functionally, no separate launch.
    std::fill_n(partial_any.data(), 2 * nteams, std::uint8_t{0});
    IndexType* prow = partial_row.data();
    ZT* pval = partial_val.data();
    std::uint8_t* pany = partial_any.data();

    const std::uint64_t search_ops = nteams * 8;
    ctx.launch_n(
        nteams,
        LaunchStats{2 * nnz + search_ops,
                    nnz * entry + (n + 1) * sizeof(IndexType) +
                        search_ops * sizeof(IndexType),
                    n * (sizeof(ZT) + 1) +
                        2 * nteams * (sizeof(IndexType) + sizeof(ZT) + 1)},
        [=](std::size_t t) {
          const IndexType k0 = static_cast<IndexType>(t) * chunk;
          const IndexType k1 = std::min<IndexType>(k0 + chunk, nnz);
          if (k0 >= k1) return;
          IndexType lo = 0, hi = n;
          while (lo < hi) {  // last row r with offs[r] <= k0
            const IndexType mid = (lo + hi) / 2;
            if (offs[mid] <= k0)
              lo = mid + 1;
            else
              hi = mid;
          }
          IndexType r = lo - 1;
          IndexType k = k0;
          while (k < k1) {
            const IndexType row_end = std::min<IndexType>(offs[r + 1], k1);
            ZT acc = sem.zero();
            bool any = false;
            for (; k < row_end; ++k) {
              const IndexType col = cols[k];
              if (up[col]) {
                acc = sem.add(acc, sem.mult(avals[k], uv[col]));
                any = true;
              }
            }
            const bool starts_inside = offs[r] >= k0;
            const bool ends_inside = offs[r + 1] <= k1;
            if (starts_inside && ends_inside) {
              if (any) {
                tv[r] = acc;
                tp[r] = 1;
              }
            } else if (any) {
              const IndexType slot =
                  2 * static_cast<IndexType>(t) + (starts_inside ? 1 : 0);
              prow[slot] = r;
              pval[slot] = acc;
              pany[slot] = 1;
            }
            ++r;
          }
        });
    // Fixup pass: combine boundary-row partials in team order (slot order
    // is deterministic, so results are reproducible run to run).
    detail::serial_kernel(
        ctx,
        LaunchStats{8 * 2 * nteams,
                    2 * nteams * (sizeof(IndexType) + sizeof(ZT) + 1),
                    2 * nteams * (sizeof(ZT) + 1)},
        [&] {
          for (IndexType s = 0; s < 2 * nteams; ++s) {
            if (!pany[s]) continue;
            const IndexType r = prow[s];
            if (tp[r]) {
              tv[r] = sem.add(tv[r], pval[s]);
            } else {
              tv[r] = pval[s];
              tp[r] = 1;
            }
          }
        });
    ctx.note_spmv_selection(
        gpu_sim::SpmvKernelKind::kCsrLoadBalanced,
        deg.warp_padded_slots > nnz
            ? (deg.warp_padded_slots - nnz) * entry
            : 0);
  } else {
    // Row-parallel CSR SpMV. Warp-granular padding: a warp streams at the
    // pace of its heaviest row, so traffic is charged in effective slots.
    const std::uint64_t slots = deg.warp_padded_slots;
    const std::uint64_t read =
        slots * entry + (n + 1) * sizeof(IndexType);
    ctx.launch_n(n, LaunchStats{2 * slots, read, n * (sizeof(ZT) + 1)},
                 [=](std::size_t i) {
                   ZT acc = sem.zero();
                   bool any = false;
                   for (IndexType k = offs[i]; k < offs[i + 1]; ++k) {
                     const IndexType col = cols[k];
                     if (up[col]) {
                       acc = sem.add(acc, sem.mult(avals[k], uv[col]));
                       any = true;
                     }
                   }
                   if (any) {
                     tv[i] = acc;
                     tp[i] = 1;
                   }
                 });
    ctx.note_spmv_selection(gpu_sim::SpmvKernelKind::kCsrScalar, 0);
  }

  pipeline::write_vector(w, t_vals, t_pres, out, accum);
}

template <typename WT, typename MObj, typename Accum, typename SR,
          typename UT, typename AT>
void vxm(Vector<WT>& w, const OutputDescriptor<MObj>& out, Accum accum, SR sr,
         const Vector<UT>& u, const Matrix<AT>& A) {
  if (sparse::record_op(sparse::FusedOpKind::kVxm, &w,
                        {&u, &A, detail::mask_addr(out)}, A.nvals(),
                        w.context(),
                        [&w, out, accum, sr, &u, &A] {
                          vxm(w, out, accum, sr, u, A);
                        }))
    return;
  using detail::LaunchStats;
  using ZT = typename SR::result_type;
  gpu_sim::Context& ctx = w.context();
  const IndexType nnz = A.nvals();

  gpu_sim::device_vector<ZT> t_vals(w.size(), ctx);
  gpu_sim::device_vector<std::uint8_t> t_pres(w.size(), ctx);
  gpu_sim::fill(t_pres, std::uint8_t{0});

  const IndexType* offs = A.row_offsets().data();
  const IndexType* cols = A.col_indices().data();
  const AT* avals = A.values().data();
  const UT* uv = u.values().data();
  const std::uint8_t* up = u.present().data();
  ZT* tv = t_vals.data();
  std::uint8_t* tp = t_pres.data();
  const SR sem = sr;

  // Sparse frontier: the compacted index list of u's present entries,
  // cached on the vector (materialize-on-demand, invalidate-on-write).
  const auto& frontier = u.sparse_indices();
  const IndexType frontier_rows =
      static_cast<IndexType>(frontier.size());
  const IndexType* fidx = frontier.data();

  // Inspector over the *frontier*: frontier-sized, not n-sized — only rows
  // with a present u entry are expanded, so both work and the
  // warp-imbalance penalty are functions of the frontier's degree
  // distribution, not the whole matrix. Reads device memory in place — no
  // transfers in steady state.
  std::uint64_t items = 0;       // flat frontier nnz
  std::uint64_t max_deg = 0;
  double sum_sq = 0.0;
  std::vector<IndexType> fdeg;
  fdeg.reserve(frontier_rows);
  for (IndexType r = 0; r < frontier_rows; ++r) {
    const IndexType k = fidx[r];
    const IndexType d = offs[k + 1] - offs[k];
    items += d;
    max_deg = std::max<std::uint64_t>(max_deg, d);
    sum_sq += static_cast<double>(d) * static_cast<double>(d);
    fdeg.push_back(d);
  }
  ctx.account_kernel(
      LaunchStats{frontier_rows, frontier_rows * 3 * sizeof(IndexType), 64});
  sparse::DegreeStats fstats;
  fstats.nrows = frontier_rows;
  fstats.ncols = A.ncols();
  fstats.nnz = items;
  fstats.max_degree = max_deg;
  fstats.mean_degree =
      frontier_rows > 0
          ? static_cast<double>(items) / static_cast<double>(frontier_rows)
          : 0.0;
  if (frontier_rows > 0) {
    const double var = sum_sq / static_cast<double>(frontier_rows) -
                       fstats.mean_degree * fstats.mean_degree;
    fstats.degree_stddev = var > 0.0 ? std::sqrt(var) : 0.0;
  }
  // Push kernels compact the frontier first, so warps run over the packed
  // present rows.
  fstats.warp_padded_slots = gpu_sim::warp_padded_items(
      fdeg.size(), ctx.properties().warp_size,
      [&](std::size_t i) { return fdeg[i]; });

  // Direction selection (Beamer-style): push scatters frontier out-edges,
  // pull gathers into the mask-allowed destinations from the CSC side and
  // early-exits each row at the additive annihilator. The destination side
  // is estimated from the (cached) mask nvals and the mean in-degree — an
  // O(1) probe, so push-direction levels pay nothing for the choice.
  sparse::TraversalShape shape;
  shape.frontier_rows = frontier_rows;
  shape.frontier_edges = items;
  shape.n = w.size();
  shape.nnz = nnz;
  shape.can_early_exit = grb::has_annihilator_v<SR>;
  shape.dest_rows = w.size();
  if constexpr (!std::is_same_v<MObj, EmptyMaskObj>) {
    if (out.mask.mask != nullptr) {
      const std::uint64_t m_nvals = out.mask.mask->nvals();
      shape.dest_rows = out.mask.complement
                            ? (shape.n >= m_nvals ? shape.n - m_nvals : 0)
                            : m_nvals;
    }
  }
  shape.dest_edges =
      A.ncols() > 0 ? shape.dest_rows * nnz / A.ncols() : 0;
  shape.transpose_cached = A.csc_cached();
  const auto direction = sparse::select_direction(
      shape, sparse::direction_mode(), &ctx.properties(), sizeof(ZT));
  ctx.note_direction_selection(direction);

  // Bit-format bypass: vxm on the logical semiring is the pull gather with
  // words for edges — each mask-allowed destination ANDs its transpose bit
  // row against the frontier's presence/truth bitmaps, early-exiting on the
  // first truthy hit exactly where the CSR pull's annihilator exit fires.
  // T̃ is identical to both CSR directions', so any mask/accum epilogue
  // composes unchanged. Auto prices it against the direction chosen above
  // (including that direction's cold-transpose bill); Force always takes it.
  if constexpr (detail::is_logical_semiring_v<SR>) {
    const auto bmode = sparse::bit_mode();
    if (bmode != sparse::BitMode::Off) {
      const double csr_time = sparse::estimated_traversal_time(
          direction, shape, sizeof(ZT), ctx.properties());
      sparse::BitTraversalShape bshape;
      bshape.dest_rows = shape.dest_rows;
      bshape.n = A.nrows();
      bshape.nnz = nnz;
      bshape.frontier_rows = frontier_rows;
      bshape.view_cached = A.bit_cached(/*transpose=*/true);
      bshape.planes =
          bshape.view_cached && A.bit_col_view().all_truthy ? 1 : 2;
      if (sparse::select_bit_traversal(bmode, bshape, csr_time,
                                       ctx.properties())) {
        const auto& view = A.bit_col_view();
        gpu_sim::device_vector<std::uint64_t> upres(ctx), utruth(ctx);
        detail::build_vector_bits(ctx, u, upres, utruth);
        auto dwords = detail::build_mask_bits(ctx, out, w.size());
        detail::bit_gather<ZT>(
            ctx, view.structure.data(),
            view.all_truthy ? view.structure.data() : view.truth.data(),
            view.stride, view.all_truthy, w.size(), A.nrows(), upres.data(),
            utruth.data(), dwords.data(), tv, tp);
        pipeline::write_vector(w, t_vals, t_pres, out, accum);
        return;
      }
    }
  }

  if (direction == gpu_sim::TraversalDirection::kPush) {
    // Push-style scatter with atomics on real hardware; simulated serially.
    // The SpMV selector still chooses the schedule whose cost is declared:
    // warp-padded effective slots for the scalar row-per-thread kernel,
    // flat items (+ partition search and fixup traffic) for merge-path.
    const auto kind =
        sparse::select_kernel(fstats, /*allow_format_change=*/false,
                              sparse::spmv_mode(), &ctx.properties(),
                              sizeof(ZT));
    const std::uint64_t entry =
        sizeof(IndexType) + sizeof(AT) + sizeof(ZT) + 1;
    std::uint64_t work_slots = fstats.warp_padded_slots;
    std::uint64_t extra_ops = 0;
    std::uint64_t extra_bytes = 0;
    std::uint64_t saved = 0;
    if (kind == gpu_sim::SpmvKernelKind::kCsrLoadBalanced) {
      const IndexType chunk =
          std::max<IndexType>(sparse::spmv_lb_chunk(), 1);
      const std::uint64_t nteams = (items + chunk - 1) / chunk;
      work_slots = items;
      extra_ops = nteams * 8 + 8 * 2 * nteams;
      extra_bytes = 2 * nteams * (sizeof(IndexType) + sizeof(ZT) + 1) * 2;
      saved = fstats.warp_padded_slots > items
                  ? (fstats.warp_padded_slots - items) * entry
                  : 0;
    }
    ctx.note_spmv_selection(kind, saved);
    const std::uint64_t read =
        frontier_rows * (3 * sizeof(IndexType) + sizeof(UT)) +
        work_slots * entry + extra_bytes;
    detail::serial_kernel(ctx, LaunchStats{2 * work_slots + extra_ops, read,
                                           items * (sizeof(ZT) + 1)},
                          [&] {
                            for (IndexType r = 0; r < frontier_rows; ++r) {
                              const IndexType k = fidx[r];
                              const UT uval = uv[k];
                              for (IndexType q = offs[k]; q < offs[k + 1];
                                   ++q) {
                                const IndexType j = cols[q];
                                const ZT prod = sem.mult(uval, avals[q]);
                                if (tp[j]) {
                                  tv[j] = sem.add(tv[j], prod);
                                } else {
                                  tv[j] = prod;
                                  tp[j] = 1;
                                }
                              }
                            }
                          });
  } else {
    // Pull-style gather: iterate the mask-allowed destinations and fold
    // their in-edges (CSC column) in ascending source order — the same
    // combination order as the push scatter, so the two directions are
    // bit-identical. With an annihilating additive monoid each row stops
    // at its first saturating hit (the Beamer early exit). Restricting t
    // to mask-allowed destinations is semantics-preserving: write_vector
    // re-applies the same mask, so disallowed positions never read t.
    auto dflags = pipeline::vector_mask_flags(ctx, out.mask, w.size());
    gpu_sim::device_vector<IndexType> dests(ctx);
    const std::uint64_t dest_count = gpu_sim::flagged_indices(dflags, dests);
    const IndexType* didx = dests.data();
    const IndexType* coffs = A.col_offsets().data();  // lazy CSC build
    const IndexType* crows = A.csc_row_indices().data();
    const AT* cvals = A.csc_values().data();
    std::uint64_t scanned = 0;     // in-edges actually touched
    std::uint64_t early_rows = 0;  // rows abandoned before exhaustion
    std::uint64_t wrote = 0;
    for (std::uint64_t r = 0; r < dest_count; ++r) {
      const IndexType j = didx[r];
      ZT acc{};
      bool any = false;
      IndexType q = coffs[j];
      const IndexType q_end = coffs[j + 1];
      for (; q < q_end; ++q) {
        const IndexType i = crows[q];
        if (!up[i]) continue;
        const ZT prod = sem.mult(uv[i], cvals[q]);
        acc = any ? sem.add(acc, prod) : prod;
        any = true;
        if constexpr (grb::SaturatingSemiring<SR>) {
          if (acc == sem.annihilator()) {
            ++q;
            break;
          }
        }
      }
      scanned += q - coffs[j];
      if (q < q_end) ++early_rows;
      if (any) {
        tv[j] = acc;
        tp[j] = 1;
        ++wrote;
      }
    }
    // Exact post-hoc accounting (the count_if/reduce precedent): per
    // destination the index + two offsets, per touched in-edge the source
    // row index, matrix value, and source presence/value probes.
    ctx.account_kernel(LaunchStats{
        2 * scanned + dest_count,
        dest_count * 3 * sizeof(IndexType) +
            scanned * (sizeof(IndexType) + sizeof(AT) + sizeof(UT) + 1),
        wrote * (sizeof(ZT) + 1)});
    ctx.note_pull_early_exit_rows(early_rows);
  }

  pipeline::write_vector(w, t_vals, t_pres, out, accum);
}

// ===========================================================================
// eWiseAdd / eWiseMult (vectors: elementwise kernels; matrices: key search)
// ===========================================================================

template <typename WT, typename MObj, typename Accum, typename Op,
          typename UT, typename VT>
void ewise_add_vec(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                   Accum accum, Op op, const Vector<UT>& u,
                   const Vector<VT>& v) {
  if (sparse::record_op(sparse::FusedOpKind::kEWiseAdd, &w,
                        {&u, &v, detail::mask_addr(out)}, w.size(),
                        w.context(),
                        [&w, out, accum, op, &u, &v] {
                          ewise_add_vec(w, out, accum, op, u, v);
                        }))
    return;
  using detail::LaunchStats;
  using ZT = std::common_type_t<UT, VT>;
  gpu_sim::Context& ctx = w.context();
  const IndexType n = w.size();
  gpu_sim::device_vector<ZT> t_vals(n, ctx);
  gpu_sim::device_vector<std::uint8_t> t_pres(n, ctx);
  const UT* uvv = u.values().data();
  const std::uint8_t* uvp = u.present().data();
  const VT* vvv = v.values().data();
  const std::uint8_t* vvp = v.present().data();
  ZT* tv = t_vals.data();
  std::uint8_t* tp = t_pres.data();
  const Op f = op;
  ctx.launch_n(n,
               LaunchStats{n, n * (sizeof(UT) + sizeof(VT) + 2),
                           n * (sizeof(ZT) + 1)},
               [=](std::size_t i) {
                 const bool hu = uvp[i], hv = vvp[i];
                 if (hu && hv) {
                   tv[i] = static_cast<ZT>(f(static_cast<ZT>(uvv[i]),
                                             static_cast<ZT>(vvv[i])));
                   tp[i] = 1;
                 } else if (hu) {
                   tv[i] = static_cast<ZT>(uvv[i]);
                   tp[i] = 1;
                 } else if (hv) {
                   tv[i] = static_cast<ZT>(vvv[i]);
                   tp[i] = 1;
                 } else {
                   tp[i] = 0;
                 }
               });
  pipeline::write_vector(w, t_vals, t_pres, out, accum);
}

template <typename WT, typename MObj, typename Accum, typename Op,
          typename UT, typename VT>
void ewise_mult_vec(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                    Accum accum, Op op, const Vector<UT>& u,
                    const Vector<VT>& v) {
  if (sparse::record_op(sparse::FusedOpKind::kEWiseMult, &w,
                        {&u, &v, detail::mask_addr(out)}, w.size(),
                        w.context(),
                        [&w, out, accum, op, &u, &v] {
                          ewise_mult_vec(w, out, accum, op, u, v);
                        }))
    return;
  using detail::LaunchStats;
  using ZT = std::common_type_t<UT, VT>;
  gpu_sim::Context& ctx = w.context();
  const IndexType n = w.size();
  gpu_sim::device_vector<ZT> t_vals(n, ctx);
  gpu_sim::device_vector<std::uint8_t> t_pres(n, ctx);
  const UT* uvv = u.values().data();
  const std::uint8_t* uvp = u.present().data();
  const VT* vvv = v.values().data();
  const std::uint8_t* vvp = v.present().data();
  ZT* tv = t_vals.data();
  std::uint8_t* tp = t_pres.data();
  const Op f = op;
  ctx.launch_n(n,
               LaunchStats{n, n * (sizeof(UT) + sizeof(VT) + 2),
                           n * (sizeof(ZT) + 1)},
               [=](std::size_t i) {
                 if (uvp[i] && vvp[i]) {
                   tv[i] = static_cast<ZT>(f(static_cast<ZT>(uvv[i]),
                                             static_cast<ZT>(vvv[i])));
                   tp[i] = 1;
                 } else {
                   tp[i] = 0;
                 }
               });
  pipeline::write_vector(w, t_vals, t_pres, out, accum);
}

namespace detail {

/// Shared machinery for matrix eWise ops: produces T's sorted keys/values.
/// Mode: union (eWiseAdd) or intersection (eWiseMult).
template <bool kUnion, typename ZT, typename Op, typename AT, typename BT>
void ewise_mat_compute(const Matrix<AT>& A, const Matrix<BT>& B, Op op,
                       device_vector<IndexType>& out_keys,
                       device_vector<ZT>& out_vals) {
  Context& ctx = A.context();
  auto a_keys = pipeline::coo_keys(A);
  auto b_keys = pipeline::coo_keys(B);
  const IndexType na = a_keys.size();
  const IndexType nb = b_keys.size();

  // Pass 1 over A: combine with matching B entry (binary search) or keep
  // (union mode).
  device_vector<ZT> a_out(na, ctx);
  device_vector<std::uint8_t> a_flag(na, ctx);
  {
    const IndexType* ak = a_keys.data();
    const AT* av = A.values().data();
    const IndexType* bk = b_keys.data();
    const BT* bv = B.values().data();
    ZT* ov = a_out.data();
    std::uint8_t* fl = a_flag.data();
    const Op f = op;
    ctx.launch_n(na,
                 LaunchStats{16 * na,
                             na * (16 * sizeof(IndexType) + sizeof(AT) +
                                   sizeof(BT)),
                             na * (sizeof(ZT) + 1)},
                 [=](std::size_t p) {
                   const IndexType key = ak[p];
                   IndexType lo = 0, hi = nb;
                   while (lo < hi) {
                     const IndexType mid = lo + (hi - lo) / 2;
                     if (bk[mid] < key)
                       lo = mid + 1;
                     else
                       hi = mid;
                   }
                   const bool in_b = lo < nb && bk[lo] == key;
                   if (in_b) {
                     ov[p] = static_cast<ZT>(f(static_cast<ZT>(av[p]),
                                               static_cast<ZT>(bv[lo])));
                     fl[p] = 1;
                   } else if (kUnion) {
                     ov[p] = static_cast<ZT>(av[p]);
                     fl[p] = 1;
                   } else {
                     fl[p] = 0;
                   }
                 });
  }

  if constexpr (!kUnion) {
    gpu_sim::copy_flagged(a_keys, a_flag, out_keys);
    gpu_sim::copy_flagged(a_out, a_flag, out_vals);
    return;
  }

  // Pass 2 over B: keep entries absent from A.
  device_vector<std::uint8_t> b_flag(nb, ctx);
  {
    const IndexType* bk = b_keys.data();
    const IndexType* ak = a_keys.data();
    std::uint8_t* fl = b_flag.data();
    ctx.launch_n(nb,
                 LaunchStats{16 * nb, nb * 16 * sizeof(IndexType), nb},
                 [=](std::size_t p) {
                   const IndexType key = bk[p];
                   IndexType lo = 0, hi = na;
                   while (lo < hi) {
                     const IndexType mid = lo + (hi - lo) / 2;
                     if (ak[mid] < key)
                       lo = mid + 1;
                     else
                       hi = mid;
                   }
                   fl[p] = (lo < na && ak[lo] == key) ? 0 : 1;
                 });
  }
  device_vector<IndexType> b_only_keys(ctx);
  device_vector<ZT> b_vals_z(ctx);
  gpu_sim::transform(B.values(), b_vals_z,
                     [](BT x) { return static_cast<ZT>(x); });
  device_vector<ZT> b_only_vals(ctx);
  gpu_sim::copy_flagged(b_keys, b_flag, b_only_keys);
  gpu_sim::copy_flagged(b_vals_z, b_flag, b_only_vals);

  // Concatenate the two disjoint sorted streams and sort once.
  device_vector<IndexType> all_keys(ctx);
  gpu_sim::copy_flagged(a_keys, a_flag, all_keys);
  device_vector<ZT> all_vals(ctx);
  gpu_sim::copy_flagged(a_out, a_flag, all_vals);
  const IndexType ka = all_keys.size();
  const IndexType kb = b_only_keys.size();
  all_keys.resize(ka + kb);
  all_vals.resize(ka + kb);
  if (kb > 0) {
    ctx.copy_d2d(all_keys.data() + ka, b_only_keys.data(),
                 kb * sizeof(IndexType));
    ctx.copy_d2d(all_vals.data() + ka, b_only_vals.data(), kb * sizeof(ZT));
  }
  gpu_sim::sort_by_key(all_keys, all_vals);
  out_keys = std::move(all_keys);
  out_vals = std::move(all_vals);
}

}  // namespace detail

template <typename CT, typename MObj, typename Accum, typename Op,
          typename AT, typename BT>
void ewise_add_mat(Matrix<CT>& C, const OutputDescriptor<MObj>& out,
                   Accum accum, Op op, const Matrix<AT>& A,
                   const Matrix<BT>& B) {
  sparse::fusion_sync_all();  // not whitelisted: writes a matrix eagerly
  using ZT = std::common_type_t<AT, BT>;
  gpu_sim::device_vector<IndexType> keys(C.context());
  gpu_sim::device_vector<ZT> vals(C.context());
  detail::ewise_mat_compute<true, ZT>(A, B, op, keys, vals);
  pipeline::write_matrix(C, keys, vals, out, accum);
}

template <typename CT, typename MObj, typename Accum, typename Op,
          typename AT, typename BT>
void ewise_mult_mat(Matrix<CT>& C, const OutputDescriptor<MObj>& out,
                    Accum accum, Op op, const Matrix<AT>& A,
                    const Matrix<BT>& B) {
  sparse::fusion_sync_all();  // not whitelisted: writes a matrix eagerly
  using ZT = std::common_type_t<AT, BT>;
  gpu_sim::device_vector<IndexType> keys(C.context());
  gpu_sim::device_vector<ZT> vals(C.context());
  detail::ewise_mat_compute<false, ZT>(A, B, op, keys, vals);
  pipeline::write_matrix(C, keys, vals, out, accum);
}

// ===========================================================================
// apply
// ===========================================================================

template <typename WT, typename MObj, typename Accum, typename UnaryOp,
          typename UT>
void apply_vec(Vector<WT>& w, const OutputDescriptor<MObj>& out, Accum accum,
               UnaryOp f, const Vector<UT>& u) {
  using detail::LaunchStats;
  // In-place eligibility (w ≡ u, no mask, no accum): T̃'s presence equals
  // w's own, so a non-head group member can run as one kernel rewriting
  // w's storage directly — no temp allocation, no write_vector epilogue.
  // Bit-identical: per-element read-then-write with no cross-element deps.
  std::function<void()> run_fused;
  if constexpr (std::is_same_v<WT, UT> &&
                std::is_same_v<MObj, EmptyMaskObj> &&
                std::is_same_v<Accum, NoAccumulate>) {
    if (static_cast<const void*>(&w) == static_cast<const void*>(&u)) {
      run_fused = [&w, f] {
        gpu_sim::Context& c = w.context();
        const IndexType n = w.size();
        WT* wv = w.values().data();
        const std::uint8_t* wp = w.present().data();
        const UnaryOp fn = f;
        c.launch_n(n,
                   LaunchStats{n, n * (sizeof(WT) + 1), n * sizeof(WT)},
                   [=](std::size_t i) {
                     if (wp[i]) wv[i] = static_cast<WT>(fn(wv[i]));
                   });
      };
    }
  }
  if (sparse::record_op(sparse::FusedOpKind::kApply, &w,
                        {&u, detail::mask_addr(out)}, u.size(), w.context(),
                        [&w, out, accum, f, &u] {
                          apply_vec(w, out, accum, f, u);
                        },
                        std::move(run_fused)))
    return;
  gpu_sim::Context& ctx = w.context();
  const IndexType n = u.size();
  gpu_sim::device_vector<WT> t_vals(n, ctx);
  gpu_sim::device_vector<std::uint8_t> t_pres(n, ctx);
  const UT* uvv = u.values().data();
  const std::uint8_t* uvp = u.present().data();
  WT* tv = t_vals.data();
  std::uint8_t* tp = t_pres.data();
  const UnaryOp fn = f;
  ctx.launch_n(n,
               LaunchStats{n, n * (sizeof(UT) + 1), n * (sizeof(WT) + 1)},
               [=](std::size_t i) {
                 if (uvp[i]) {
                   tv[i] = static_cast<WT>(fn(uvv[i]));
                   tp[i] = 1;
                 } else {
                   tp[i] = 0;
                 }
               });
  pipeline::write_vector(w, t_vals, t_pres, out, accum);
}

template <typename CT, typename MObj, typename Accum, typename UnaryOp,
          typename AT>
void apply_mat(Matrix<CT>& C, const OutputDescriptor<MObj>& out, Accum accum,
               UnaryOp f, const Matrix<AT>& A) {
  sparse::fusion_sync_all();  // not whitelisted: writes a matrix eagerly
  gpu_sim::Context& ctx = C.context();
  auto keys = pipeline::coo_keys(A);
  gpu_sim::device_vector<CT> vals(ctx);
  const UnaryOp fn = f;
  gpu_sim::transform(A.values(), vals,
                     [fn](AT x) { return static_cast<CT>(fn(x)); });
  pipeline::write_matrix(C, keys, vals, out, accum);
}

/// Index-aware apply (IndexUnaryOp extension): one elementwise kernel.
template <typename WT, typename MObj, typename Accum, typename IdxOp,
          typename UT>
void apply_indexed_vec(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                       Accum accum, IdxOp f, const Vector<UT>& u) {
  using detail::LaunchStats;
  if (sparse::record_op(sparse::FusedOpKind::kApplyIndexed, &w,
                        {&u, detail::mask_addr(out)}, u.size(), w.context(),
                        [&w, out, accum, f, &u] {
                          apply_indexed_vec(w, out, accum, f, u);
                        }))
    return;
  gpu_sim::Context& ctx = w.context();
  const IndexType n = u.size();
  gpu_sim::device_vector<WT> t_vals(n, ctx);
  gpu_sim::device_vector<std::uint8_t> t_pres(n, ctx);
  const UT* uvv = u.values().data();
  const std::uint8_t* uvp = u.present().data();
  WT* tv = t_vals.data();
  std::uint8_t* tp = t_pres.data();
  const IdxOp fn = f;
  ctx.launch_n(n,
               LaunchStats{2 * n, n * (sizeof(UT) + 1),
                           n * (sizeof(WT) + 1)},
               [=](std::size_t i) {
                 if (uvp[i]) {
                   tv[i] = static_cast<WT>(
                       fn(static_cast<IndexType>(i), uvv[i]));
                   tp[i] = 1;
                 } else {
                   tp[i] = 0;
                 }
               });
  pipeline::write_vector(w, t_vals, t_pres, out, accum);
}

/// Matrix form: transform over the COO expansion.
template <typename CT, typename MObj, typename Accum, typename IdxOp,
          typename AT>
void apply_indexed_mat(Matrix<CT>& C, const OutputDescriptor<MObj>& out,
                       Accum accum, IdxOp f, const Matrix<AT>& A) {
  sparse::fusion_sync_all();  // not whitelisted: writes a matrix eagerly
  using detail::LaunchStats;
  gpu_sim::Context& ctx = C.context();
  auto keys = pipeline::coo_keys(A);
  const IndexType nnz = A.nvals();
  gpu_sim::device_vector<CT> vals(nnz, ctx);
  const IndexType* k = keys.data();
  const AT* av = A.values().data();
  CT* ov = vals.data();
  const IndexType ncols = A.ncols();
  const IdxOp fn = f;
  ctx.launch_n(nnz,
               LaunchStats{3 * nnz,
                           nnz * (sizeof(IndexType) + sizeof(AT)),
                           nnz * sizeof(CT)},
               [=](std::size_t p) {
                 ov[p] = static_cast<CT>(
                     fn(k[p] / ncols, k[p] % ncols, av[p]));
               });
  pipeline::write_matrix(C, keys, vals, out, accum);
}

// ===========================================================================
// reduce
// ===========================================================================

template <typename WT, typename MObj, typename Accum, typename Monoid,
          typename AT>
void reduce_mat_to_vec(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                       Accum accum, Monoid monoid, const Matrix<AT>& A) {
  if (sparse::record_op(sparse::FusedOpKind::kReduceMatToVec, &w,
                        {&A, detail::mask_addr(out)}, A.nvals(), w.context(),
                        [&w, out, accum, monoid, &A] {
                          reduce_mat_to_vec(w, out, accum, monoid, A);
                        }))
    return;
  using detail::LaunchStats;
  using ZT = typename Monoid::result_type;
  gpu_sim::Context& ctx = w.context();
  const IndexType n = A.nrows();
  const IndexType nnz = A.nvals();
  gpu_sim::device_vector<ZT> t_vals(n, ctx);
  gpu_sim::device_vector<std::uint8_t> t_pres(n, ctx);
  const IndexType* offs = A.row_offsets().data();
  const AT* avals = A.values().data();
  ZT* tv = t_vals.data();
  std::uint8_t* tp = t_pres.data();
  const Monoid m = monoid;
  ctx.launch_n(n,
               LaunchStats{nnz, nnz * sizeof(AT) + n * sizeof(IndexType),
                           n * (sizeof(ZT) + 1)},
               [=](std::size_t i) {
                 if (offs[i] == offs[i + 1]) {
                   tp[i] = 0;
                   return;
                 }
                 ZT acc = m.identity();
                 for (IndexType k = offs[i]; k < offs[i + 1]; ++k)
                   acc = m(acc, static_cast<ZT>(avals[k]));
                 tv[i] = acc;
                 tp[i] = 1;
               });
  pipeline::write_vector(w, t_vals, t_pres, out, accum);
}

template <typename ST, typename Accum, typename Monoid, typename UT>
void reduce_vec_to_scalar(ST& s, Accum accum, Monoid monoid,
                          const Vector<UT>& u) {
  // Record-then-drain: the reduction joins the dag (so an eWiseMult→reduce
  // chain fuses into one composite launch) but the host scalar must be
  // valid at return, so the drain follows immediately. Capturing &s is safe
  // for exactly that reason.
  if (sparse::record_op(sparse::FusedOpKind::kReduceToScalar, nullptr, {&u},
                        u.size(), u.context(),
                        [&s, accum, monoid, &u] {
                          reduce_vec_to_scalar(s, accum, monoid, u);
                        })) {
    sparse::fusion_sync_all();
    return;
  }
  using detail::LaunchStats;
  using ZT = typename Monoid::result_type;
  gpu_sim::Context& ctx = u.context();
  const IndexType n = u.size();
  gpu_sim::device_vector<ZT> masked(n, ctx);
  const UT* uv = u.values().data();
  const std::uint8_t* up = u.present().data();
  ZT* mv = masked.data();
  const Monoid m = monoid;
  ctx.launch_n(n, LaunchStats{n, n * (sizeof(UT) + 1), n * sizeof(ZT)},
               [=](std::size_t i) {
                 mv[i] = up[i] ? static_cast<ZT>(uv[i]) : m.identity();
               });
  const ZT acc = gpu_sim::reduce(masked, monoid.identity(),
                                 [m](ZT a, ZT b) { return m(a, b); });
  if constexpr (std::is_same_v<Accum, NoAccumulate>)
    s = static_cast<ST>(acc);
  else
    s = static_cast<ST>(accum(s, static_cast<ST>(acc)));
}

template <typename ST, typename Accum, typename Monoid, typename AT>
void reduce_mat_to_scalar(ST& s, Accum accum, Monoid monoid,
                          const Matrix<AT>& A) {
  sparse::fusion_sync_all();  // not whitelisted: host scalar read
  using ZT = typename Monoid::result_type;
  const Monoid m = monoid;
  const ZT acc = gpu_sim::reduce(A.values(), monoid.identity(),
                                 [m](ZT a, AT b) {
                                   return m(a, static_cast<ZT>(b));
                                 });
  if constexpr (std::is_same_v<Accum, NoAccumulate>)
    s = static_cast<ST>(acc);
  else
    s = static_cast<ST>(accum(s, static_cast<ST>(acc)));
}

// ===========================================================================
// transpose
// ===========================================================================

template <typename CT, typename MObj, typename Accum, typename AT>
void transpose_op(Matrix<CT>& C, const OutputDescriptor<MObj>& out,
                  Accum accum, const Matrix<AT>& A) {
  sparse::fusion_sync_all();  // not whitelisted: writes a matrix eagerly
  using detail::LaunchStats;
  gpu_sim::Context& ctx = C.context();
  const IndexType nnz = A.nvals();
  auto keys = pipeline::coo_keys(A);
  // Swap (i, j): key' = j * A.nrows + i.
  gpu_sim::device_vector<IndexType> t_keys(nnz, ctx);
  {
    const IndexType* k = keys.data();
    IndexType* o = t_keys.data();
    const IndexType an = A.ncols();
    const IndexType cn = C.ncols();
    ctx.launch_n(nnz,
                 LaunchStats{3 * nnz, nnz * sizeof(IndexType),
                             nnz * sizeof(IndexType)},
                 [=](std::size_t p) {
                   const IndexType i = k[p] / an;
                   const IndexType j = k[p] % an;
                   o[p] = j * cn + i;
                 });
  }
  gpu_sim::device_vector<CT> t_vals(ctx);
  gpu_sim::transform(A.values(), t_vals,
                     [](AT x) { return static_cast<CT>(x); });
  gpu_sim::sort_by_key(t_keys, t_vals);
  pipeline::write_matrix(C, t_keys, t_vals, out, accum);
}

/// Materialized plain transpose (TransposeView lowering helper).
template <typename T>
Matrix<T> transposed(const Matrix<T>& A) {
  Matrix<T> At(A.ncols(), A.nrows(), A.context());
  transpose_op(At, NoMaskOutputDesc{{}, true}, NoAccumulate{}, A);
  return At;
}

// ===========================================================================
// extract / assign — vectors device-native, matrices via host fallback
// ===========================================================================

template <typename WT, typename MObj, typename Accum, typename UT>
void extract_vec(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                 Accum accum, const Vector<UT>& u,
                 const IndexArrayType& indices) {
  using detail::LaunchStats;
  gpu_sim::Context& ctx = w.context();
  for (IndexType src : indices)
    if (src >= u.size())
      throw IndexOutOfBoundsException("extract: source index");
  if (!sparse::op_dag().draining &&
      sparse::fusion_mode() != sparse::FusionMode::Off) {
    auto idx = std::make_shared<IndexArrayType>(indices);
    auto staged = sparse::make_index_prefetch(idx, ctx);
    if (sparse::record_op(sparse::FusedOpKind::kExtract, &w,
                          {&u, detail::mask_addr(out)}, w.size(), ctx,
                          [&w, out, accum, &u, idx] {
                            extract_vec(w, out, accum, u, *idx);
                          },
                          nullptr, std::move(staged.first),
                          std::move(staged.second)))
      return;
  }
  const IndexType n = w.size();
  // Index upload: planner-staged on the transfer stream when this replay is
  // part of a drain (overlapped H2D), synchronous otherwise.
  gpu_sim::device_vector<IndexType> d_idx =
      sparse::staged_or_upload(indices, ctx);
  gpu_sim::device_vector<WT> t_vals(n, ctx);
  gpu_sim::device_vector<std::uint8_t> t_pres(n, ctx);
  gpu_sim::fill(t_pres, std::uint8_t{0});
  const IndexType* ix = d_idx.data();
  const UT* uvv = u.values().data();
  const std::uint8_t* uvp = u.present().data();
  WT* tv = t_vals.data();
  std::uint8_t* tp = t_pres.data();
  const IndexType m = d_idx.size();
  ctx.launch_n(m,
               LaunchStats{m, m * (sizeof(IndexType) + sizeof(UT) + 1),
                           m * (sizeof(WT) + 1)},
               [=](std::size_t k) {
                 const IndexType src = ix[k];
                 if (uvp[src]) {
                   tv[k] = static_cast<WT>(uvv[src]);
                   tp[k] = 1;
                 }
               });
  pipeline::write_vector(w, t_vals, t_pres, out, accum);
}

template <typename WT, typename MObj, typename Accum, typename UT>
void assign_vec(Vector<WT>& w, const OutputDescriptor<MObj>& out, Accum accum,
                const Vector<UT>& u, const IndexArrayType& indices) {
  using detail::LaunchStats;
  gpu_sim::Context& ctx = w.context();
  for (IndexType dst : indices)
    if (dst >= w.size())
      throw IndexOutOfBoundsException("assign: destination index");
  if (!sparse::op_dag().draining &&
      sparse::fusion_mode() != sparse::FusionMode::Off) {
    auto idx = std::make_shared<IndexArrayType>(indices);
    auto staged = sparse::make_index_prefetch(idx, ctx);
    if (sparse::record_op(sparse::FusedOpKind::kAssign, &w,
                          {&u, detail::mask_addr(out)}, w.size(), ctx,
                          [&w, out, accum, &u, idx] {
                            assign_vec(w, out, accum, u, *idx);
                          },
                          nullptr, std::move(staged.first),
                          std::move(staged.second)))
      return;
  }
  constexpr bool kAccum = !std::is_same_v<Accum, NoAccumulate>;
  // Z starts as w (device copies), subrange overwritten by scatter.
  gpu_sim::device_vector<WT> t_vals = w.values();
  gpu_sim::device_vector<std::uint8_t> t_pres = w.present();
  gpu_sim::device_vector<IndexType> d_idx =
      sparse::staged_or_upload(indices, ctx);
  const IndexType* ix = d_idx.data();
  const UT* uvv = u.values().data();
  const std::uint8_t* uvp = u.present().data();
  WT* tv = t_vals.data();
  std::uint8_t* tp = t_pres.data();
  const IndexType m = d_idx.size();
  const Accum acc_op = accum;
  ctx.launch_n(m,
               LaunchStats{m,
                           m * (sizeof(IndexType) + sizeof(UT) + sizeof(WT) +
                                2),
                           m * (sizeof(WT) + 1)},
               [=](std::size_t k) {
                 const IndexType dst = ix[k];
                 if (uvp[k]) {
                   const WT uv = static_cast<WT>(uvv[k]);
                   if constexpr (kAccum) {
                     if (tp[dst]) {
                       tv[dst] = static_cast<WT>(acc_op(tv[dst], uv));
                     } else {
                       tv[dst] = uv;
                       tp[dst] = 1;
                     }
                   } else {
                     tv[dst] = uv;
                     tp[dst] = 1;
                   }
                 } else {
                   if constexpr (!kAccum) {
                     tp[dst] = 0;
                     tv[dst] = WT{};
                   }
                 }
               });
  pipeline::write_vector(w, t_vals, t_pres, out, NoAccumulate{});
}

template <typename WT, typename MObj, typename Accum>
void assign_vec_constant(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                         Accum accum, const WT& value,
                         const IndexArrayType& indices) {
  using detail::LaunchStats;
  gpu_sim::Context& ctx = w.context();
  for (IndexType dst : indices)
    if (dst >= w.size())
      throw IndexOutOfBoundsException("assign: destination index");
  if (!sparse::op_dag().draining &&
      sparse::fusion_mode() != sparse::FusionMode::Off) {
    auto idx = std::make_shared<IndexArrayType>(indices);
    auto staged = sparse::make_index_prefetch(idx, ctx);
    if (sparse::record_op(sparse::FusedOpKind::kAssignConstant, &w,
                          {detail::mask_addr(out)}, w.size(), ctx,
                          [&w, out, accum, value, idx] {
                            assign_vec_constant(w, out, accum, value, *idx);
                          },
                          nullptr, std::move(staged.first),
                          std::move(staged.second)))
      return;
  }
  constexpr bool kAccum = !std::is_same_v<Accum, NoAccumulate>;
  gpu_sim::device_vector<WT> t_vals = w.values();
  gpu_sim::device_vector<std::uint8_t> t_pres = w.present();
  gpu_sim::device_vector<IndexType> d_idx =
      sparse::staged_or_upload(indices, ctx);
  const IndexType* ix = d_idx.data();
  WT* tv = t_vals.data();
  std::uint8_t* tp = t_pres.data();
  const IndexType m = d_idx.size();
  const WT val = value;
  const Accum acc_op = accum;
  ctx.launch_n(m,
               LaunchStats{m, m * (sizeof(IndexType) + sizeof(WT) + 1),
                           m * (sizeof(WT) + 1)},
               [=](std::size_t k) {
                 const IndexType dst = ix[k];
                 if constexpr (kAccum) {
                   if (tp[dst]) {
                     tv[dst] = static_cast<WT>(acc_op(tv[dst], val));
                     return;
                   }
                 }
                 tv[dst] = val;
                 tp[dst] = 1;
               });
  pipeline::write_vector(w, t_vals, t_pres, out, NoAccumulate{});
}

template <typename WT, typename MObj, typename Accum, typename Pred,
          typename UT>
void select_vec(Vector<WT>& w, const OutputDescriptor<MObj>& out, Accum accum,
                Pred pred, const Vector<UT>& u) {
  using detail::LaunchStats;
  if (sparse::record_op(sparse::FusedOpKind::kSelect, &w,
                        {&u, detail::mask_addr(out)}, u.size(), w.context(),
                        [&w, out, accum, pred, &u] {
                          select_vec(w, out, accum, pred, u);
                        }))
    return;
  gpu_sim::Context& ctx = w.context();
  const IndexType n = u.size();
  gpu_sim::device_vector<UT> t_vals(n, ctx);
  gpu_sim::device_vector<std::uint8_t> t_pres(n, ctx);
  const UT* uvv = u.values().data();
  const std::uint8_t* uvp = u.present().data();
  UT* tv = t_vals.data();
  std::uint8_t* tp = t_pres.data();
  const Pred p = pred;
  ctx.launch_n(n,
               LaunchStats{2 * n, n * (sizeof(UT) + 1),
                           n * (sizeof(UT) + 1)},
               [=](std::size_t i) {
                 if (uvp[i] && p(static_cast<IndexType>(i), uvv[i])) {
                   tv[i] = uvv[i];
                   tp[i] = 1;
                 } else {
                   tp[i] = 0;
                 }
               });
  pipeline::write_vector(w, t_vals, t_pres, out, accum);
}

// --- Host fallbacks (documented substitution: GBTL-CUDA routed rare
// structural ops through the host; every byte of transfer is accounted). ---

template <typename CT, typename MObj, typename Accum, typename AT>
void extract_mat(Matrix<CT>& C, const OutputDescriptor<MObj>& out,
                 Accum accum, const Matrix<AT>& A,
                 const IndexArrayType& row_indices,
                 const IndexArrayType& col_indices) {
  sparse::fusion_sync_all();  // not whitelisted: host fallback
  auto host_c = detail::download(C);
  const auto host_a = detail::download(A);
  detail::with_seq_output(out, [&](const auto& seq_out) {
    seq_backend::extract_mat(host_c, seq_out, accum, host_a, row_indices,
                             col_indices);
  });
  detail::upload(C, host_c);
}

/// Device-native column gather: one kernel binary-searches @p col within
/// each selected row's CSR segment. (Row gathers via transpose(A) lower to
/// this after the frontend materializes the transpose.)
template <typename WT, typename MObj, typename Accum, typename AT>
void extract_col(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                 Accum accum, const Matrix<AT>& A,
                 const IndexArrayType& row_indices, IndexType col) {
  sparse::fusion_sync_all();  // not whitelisted: writes w eagerly
  using detail::LaunchStats;
  gpu_sim::Context& ctx = w.context();
  if (col >= A.ncols())
    throw IndexOutOfBoundsException("extract: column index");
  for (IndexType r : row_indices)
    if (r >= A.nrows()) throw IndexOutOfBoundsException("extract: row index");

  const IndexType m = row_indices.size();
  gpu_sim::device_vector<IndexType> d_rows(row_indices, ctx);  // H2D
  gpu_sim::device_vector<WT> t_vals(w.size(), ctx);
  gpu_sim::device_vector<std::uint8_t> t_pres(w.size(), ctx);
  gpu_sim::fill(t_pres, std::uint8_t{0});

  const IndexType* rsel = d_rows.data();
  const IndexType* offs = A.row_offsets().data();
  const IndexType* cols = A.col_indices().data();
  const AT* vals = A.values().data();
  WT* tv = t_vals.data();
  std::uint8_t* tp = t_pres.data();
  ctx.launch_n(m,
               LaunchStats{8 * m,
                           m * (8 * sizeof(IndexType) + sizeof(AT)),
                           m * (sizeof(WT) + 1)},
               [=](std::size_t k) {
                 const IndexType r = rsel[k];
                 IndexType lo = offs[r], hi = offs[r + 1];
                 while (lo < hi) {
                   const IndexType mid = lo + (hi - lo) / 2;
                   if (cols[mid] < col)
                     lo = mid + 1;
                   else
                     hi = mid;
                 }
                 if (lo < offs[r + 1] && cols[lo] == col) {
                   tv[k] = static_cast<WT>(vals[lo]);
                   tp[k] = 1;
                 }
               });
  pipeline::write_vector(w, t_vals, t_pres, out, accum);
}

template <typename CT, typename MObj, typename Accum, typename AT>
void assign_mat(Matrix<CT>& C, const OutputDescriptor<MObj>& out, Accum accum,
                const Matrix<AT>& A, const IndexArrayType& row_indices,
                const IndexArrayType& col_indices) {
  sparse::fusion_sync_all();  // not whitelisted: host fallback
  auto host_c = detail::download(C);
  const auto host_a = detail::download(A);
  detail::with_seq_output(out, [&](const auto& seq_out) {
    seq_backend::assign_mat(host_c, seq_out, accum, host_a, row_indices,
                            col_indices);
  });
  detail::upload(C, host_c);
}

namespace detail {

inline bool is_identity(const IndexArrayType& idx, IndexType n) {
  if (idx.size() != n) return false;
  for (IndexType i = 0; i < n; ++i)
    if (idx[i] != i) return false;
  return true;
}

}  // namespace detail

template <typename CT, typename MObj, typename Accum>
void assign_mat_constant(Matrix<CT>& C, const OutputDescriptor<MObj>& out,
                         Accum accum, const CT& value,
                         const IndexArrayType& row_indices,
                         const IndexArrayType& col_indices) {
  sparse::fusion_sync_all();  // not whitelisted: writes a matrix eagerly
  // Device fast path for the dominant idiom (e.g. level stamping in
  // batched BFS): full-grid constant assign under a non-complemented mask.
  // The allowed positions are exactly the mask's (truthy) entries, so T̃'s
  // keys come straight off the mask's structure — no host round-trip.
  if constexpr (!std::is_same_v<MObj, EmptyMaskObj> &&
                std::is_same_v<Accum, NoAccumulate>) {
    if (out.mask.mask != nullptr && !out.mask.complement &&
        detail::is_identity(row_indices, C.nrows()) &&
        detail::is_identity(col_indices, C.ncols())) {
      gpu_sim::Context& ctx = C.context();
      auto keys = pipeline::coo_keys(*out.mask.mask);
      if (!out.mask.structural) {
        using MV = typename MObj::ScalarType;
        gpu_sim::device_vector<std::uint8_t> flags(ctx);
        gpu_sim::transform(out.mask.mask->values(), flags, [](MV v) {
          return static_cast<std::uint8_t>(static_cast<bool>(v));
        });
        gpu_sim::device_vector<IndexType> kept(ctx);
        gpu_sim::copy_flagged(keys, flags, kept);
        keys = std::move(kept);
      }
      gpu_sim::device_vector<CT> vals(keys.size(), ctx);
      gpu_sim::fill(vals, value);
      pipeline::write_matrix(C, keys, vals, out, NoAccumulate{});
      return;
    }
  }
  auto host_c = detail::download(C);
  detail::with_seq_output(out, [&](const auto& seq_out) {
    seq_backend::assign_mat_constant(host_c, seq_out, accum, value,
                                     row_indices, col_indices);
  });
  detail::upload(C, host_c);
}

template <typename CT, typename MObj, typename Accum, typename Op,
          typename AT, typename BT>
void kronecker(Matrix<CT>& C, const OutputDescriptor<MObj>& out, Accum accum,
               Op op, const Matrix<AT>& A, const Matrix<BT>& B) {
  sparse::fusion_sync_all();  // not whitelisted: host fallback
  auto host_c = detail::download(C);
  const auto host_a = detail::download(A);
  const auto host_b = detail::download(B);
  detail::with_seq_output(out, [&](const auto& seq_out) {
    seq_backend::kronecker(host_c, seq_out, accum, op, host_a, host_b);
  });
  detail::upload(C, host_c);
}

template <typename CT, typename MObj, typename Accum, typename Pred,
          typename AT>
void select_mat(Matrix<CT>& C, const OutputDescriptor<MObj>& out, Accum accum,
                Pred pred, const Matrix<AT>& A) {
  sparse::fusion_sync_all();  // not whitelisted: host fallback
  auto host_c = detail::download(C);
  const auto host_a = detail::download(A);
  detail::with_seq_output(out, [&](const auto& seq_out) {
    seq_backend::select_mat(host_c, seq_out, accum, pred, host_a);
  });
  detail::upload(C, host_c);
}

}  // namespace grb::gpu_backend
