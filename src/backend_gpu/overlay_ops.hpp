#pragma once

/// @file backend_gpu/overlay_ops.hpp
/// GpuSim mxv/vxm over (base matrix, replacement-row overlay): the ISSUE's
/// "base pass + delta pass" feeding the shared output pipeline.
///
/// The overlay's four host arrays are uploaded per call (O(delta) H2D,
/// accounted by the device_vector upload ctor) — the base CSR stays
/// resident and untouched.
///
/// mxv: a row-parallel CSR pass over the base seeds t, then a delta kernel
/// OVERWRITES every dirty row's slot from its replacement row (presence
/// included — a dirty row whose fold is empty clears the base pass's bit).
/// Both passes fold zero-seeded in ascending column order, so the final t
/// matches the monolithic kernel bit for bit no matter which schedule the
/// monolithic selector would have picked.
///
/// vxm: one scatter over the frontier in ascending source order with row
/// substitution (binary search in the uploaded dirty-row list) and a bare
/// first product per output — the Sequential scatter's combination order.
///
/// Both ops run eagerly: they are not fusion-DAG citizens, so any pending
/// fused ops touching the operands are drained first.

#include <algorithm>
#include <cstdint>

#include "backend_gpu/matrix.hpp"
#include "backend_gpu/ops.hpp"
#include "backend_gpu/vector.hpp"
#include "gbtl/overlay.hpp"
#include "gbtl/types.hpp"
#include "gbtl/write_rules.hpp"
#include "sparse/fusion_plan.hpp"
#include "sparse/output_pipeline.hpp"

namespace grb::gpu_backend {

template <typename WT, typename MObj, typename Accum, typename SR,
          typename AT, typename UT>
void mxv_overlay(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                 Accum accum, SR sr, const Matrix<AT>& A,
                 const MatrixOverlay<AT>& ov, const Vector<UT>& u) {
  sparse::fusion_sync_if_touches(&w);
  sparse::fusion_sync_if_touches(&A);
  sparse::fusion_sync_if_touches(&u);
  using detail::LaunchStats;
  using ZT = typename SR::result_type;
  gpu_sim::Context& ctx = w.context();
  const IndexType n = A.nrows();
  const IndexType nnz = A.nvals();

  gpu_sim::device_vector<ZT> t_vals(n, ctx);
  gpu_sim::device_vector<std::uint8_t> t_pres(n, ctx);
  gpu_sim::fill(t_pres, std::uint8_t{0});

  gpu_sim::device_vector<IndexType> d_rows(ov.rows, ctx);
  gpu_sim::device_vector<IndexType> d_offs(ov.offsets, ctx);
  gpu_sim::device_vector<IndexType> d_cols(ov.cols, ctx);
  gpu_sim::device_vector<AT> d_vals(ov.vals, ctx);

  const IndexType* offs = A.row_offsets().data();
  const IndexType* cols = A.col_indices().data();
  const AT* avals = A.values().data();
  const UT* uv = u.values().data();
  const std::uint8_t* up = u.present().data();
  ZT* tv = t_vals.data();
  std::uint8_t* tp = t_pres.data();
  const IndexType dirty = static_cast<IndexType>(ov.dirty_rows());
  const IndexType* drows = d_rows.data();
  const IndexType* doffs = d_offs.data();
  const IndexType* dcols = d_cols.data();
  const AT* dvals = d_vals.data();
  const SR sem = sr;

  const std::uint64_t entry =
      sizeof(IndexType) + sizeof(AT) + sizeof(UT) + 1;

  // Base pass: row-parallel CSR gather over every base row (dirty rows'
  // results are provisional — the delta pass replaces them).
  ctx.launch_n(n,
               LaunchStats{2 * nnz,
                           nnz * entry + (n + 1) * sizeof(IndexType),
                           n * (sizeof(ZT) + 1)},
               [=](std::size_t i) {
                 ZT acc = sem.zero();
                 bool any = false;
                 for (IndexType k = offs[i]; k < offs[i + 1]; ++k) {
                   const IndexType col = cols[k];
                   if (up[col]) {
                     acc = sem.add(acc, sem.mult(avals[k], uv[col]));
                     any = true;
                   }
                 }
                 if (any) {
                   tv[i] = acc;
                   tp[i] = 1;
                 }
               });

  // Delta pass: overwrite each dirty row's slot from its replacement row,
  // presence bit included.
  if (dirty > 0) {
    ctx.launch_n(
        dirty,
        LaunchStats{2 * ov.nnz(),
                    ov.nnz() * entry + dirty * 3 * sizeof(IndexType),
                    dirty * (sizeof(ZT) + 1)},
        [=](std::size_t s) {
          const IndexType i = drows[s];
          ZT acc = sem.zero();
          bool any = false;
          for (IndexType k = doffs[s]; k < doffs[s + 1]; ++k) {
            const IndexType col = dcols[k];
            if (up[col]) {
              acc = sem.add(acc, sem.mult(dvals[k], uv[col]));
              any = true;
            }
          }
          tv[i] = acc;
          tp[i] = any ? 1 : 0;
        });
  }

  pipeline::write_vector(w, t_vals, t_pres, out, accum);
}

template <typename WT, typename MObj, typename Accum, typename SR,
          typename UT, typename AT>
void vxm_overlay(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                 Accum accum, SR sr, const Vector<UT>& u,
                 const Matrix<AT>& A, const MatrixOverlay<AT>& ov) {
  sparse::fusion_sync_if_touches(&w);
  sparse::fusion_sync_if_touches(&A);
  sparse::fusion_sync_if_touches(&u);
  using detail::LaunchStats;
  using ZT = typename SR::result_type;
  gpu_sim::Context& ctx = w.context();

  gpu_sim::device_vector<ZT> t_vals(w.size(), ctx);
  gpu_sim::device_vector<std::uint8_t> t_pres(w.size(), ctx);
  gpu_sim::fill(t_pres, std::uint8_t{0});

  gpu_sim::device_vector<IndexType> d_rows(ov.rows, ctx);
  gpu_sim::device_vector<IndexType> d_offs(ov.offsets, ctx);
  gpu_sim::device_vector<IndexType> d_cols(ov.cols, ctx);
  gpu_sim::device_vector<AT> d_vals(ov.vals, ctx);

  const IndexType* offs = A.row_offsets().data();
  const IndexType* cols = A.col_indices().data();
  const AT* avals = A.values().data();
  const UT* uv = u.values().data();
  ZT* tv = t_vals.data();
  std::uint8_t* tp = t_pres.data();
  const IndexType dirty = static_cast<IndexType>(ov.dirty_rows());
  const IndexType* drows = d_rows.data();
  const IndexType* doffs = d_offs.data();
  const IndexType* dcols = d_cols.data();
  const AT* dvals = d_vals.data();
  const SR sem = sr;

  // Frontier inspector with row substitution: each present source row
  // expands either its replacement row or its base row.
  const auto& frontier = u.sparse_indices();
  const IndexType frontier_rows = static_cast<IndexType>(frontier.size());
  const IndexType* fidx = frontier.data();
  std::uint64_t items = 0;
  for (IndexType r = 0; r < frontier_rows; ++r) {
    const IndexType k = fidx[r];
    const std::size_t slot = ov.find_row(k);
    items += slot < ov.dirty_rows()
                 ? ov.offsets[slot + 1] - ov.offsets[slot]
                 : offs[k + 1] - offs[k];
  }
  ctx.account_kernel(
      LaunchStats{frontier_rows, frontier_rows * 3 * sizeof(IndexType), 64});

  // Push scatter (atomics on real hardware, simulated serially): frontier
  // rows ascend, so contributions land in the Sequential scatter's order —
  // bare first product, then sr.add folds.
  const std::uint64_t entry =
      sizeof(IndexType) + sizeof(AT) + sizeof(ZT) + 1;
  detail::serial_kernel(
      ctx,
      LaunchStats{2 * items + frontier_rows * 8,
                  frontier_rows * (3 * sizeof(IndexType) + sizeof(UT)) +
                      items * entry,
                  items * (sizeof(ZT) + 1)},
      [&] {
        for (IndexType r = 0; r < frontier_rows; ++r) {
          const IndexType k = fidx[r];
          const UT uval = uv[k];
          // Binary search the dirty-row list (the 8-op term above).
          IndexType lo = 0, hi = dirty;
          while (lo < hi) {
            const IndexType mid = (lo + hi) / 2;
            if (drows[mid] < k)
              lo = mid + 1;
            else
              hi = mid;
          }
          const bool is_dirty = lo < dirty && drows[lo] == k;
          const IndexType q0 = is_dirty ? doffs[lo] : offs[k];
          const IndexType q1 = is_dirty ? doffs[lo + 1] : offs[k + 1];
          for (IndexType q = q0; q < q1; ++q) {
            const IndexType j = is_dirty ? dcols[q] : cols[q];
            const ZT prod = sem.mult(uval, is_dirty ? dvals[q] : avals[q]);
            if (tp[j]) {
              tv[j] = sem.add(tv[j], prod);
            } else {
              tv[j] = prod;
              tp[j] = 1;
            }
          }
        }
      });

  pipeline::write_vector(w, t_vals, t_pres, out, accum);
}

}  // namespace grb::gpu_backend
