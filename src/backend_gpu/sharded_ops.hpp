#pragma once

/// @file backend_gpu/sharded_ops.hpp
/// Operation entry points of the GpuShard backend (namespace
/// grb::gpu_shard). Three tiers:
///
///  1. mxv / vxm — genuinely sharded: the op walks the row blocks in plan
///     order, broadcasts each shard's slice of the input vector (the halo)
///     to that shard's context on its transfer stream while the previous
///     shard's kernel is still running, gathers per-shard outputs back to
///     the home device, and hands the full unmasked T̃ to the shared
///     pipeline::write_vector epilogue — so mask/accum/replace semantics
///     are byte-for-byte the single-device ones. Shards resident on the
///     home context compute in place: no self-halo, no staging, keeping
///     the home arena free for the op working set.
///  2. pure vector ops — re-exported from gpu_backend unchanged (GpuShard
///     vectors ARE gpu_backend vectors on the home context, fusion DAG and
///     all).
///  3. the long matrix-op tail (mxm, apply_mat, kronecker, ...) — delegated
///     to the single-device pipelines through the matrix's monolithic
///     home() view, with the host CSR re-synced afterwards. These ops have
///     no sharded path, which is why oversized-graph serving is restricted
///     to algorithms that only need tiers 1+2 (bfs / sssp / cc).
///
/// Bit-exactness. Under the row-block partition every output row of mxv is
/// computed whole inside one shard with the monolithic kernel's ascending-k
/// zero-seeded fold, so per-shard results concatenate exactly. vxm is the
/// subtle one: the push scatter stores the FIRST product into t directly
/// (not folded into sem.zero()), so pre-folding per-shard partials and
/// merging them would re-associate floating-point adds. Instead each shard
/// emits its raw (column, product) pairs in emission order and the home
/// context left-folds them shard-by-shard in plan order — reproducing the
/// monolithic scatter's combination order product for product.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "backend_gpu/matrix.hpp"
#include "backend_gpu/ops.hpp"
#include "backend_gpu/sharded_matrix.hpp"
#include "backend_gpu/vector.hpp"
#include "gbtl/types.hpp"
#include "gbtl/write_rules.hpp"
#include "gpu_sim/context.hpp"
#include "gpu_sim/device_properties.hpp"
#include "gpu_sim/placement.hpp"
#include "sparse/fusion_plan.hpp"
#include "sparse/output_pipeline.hpp"
#include "sparse/shard_plan.hpp"

namespace grb::gpu_shard {

using gpu_backend::Matrix;
using gpu_backend::ShardedMatrix;
using gpu_backend::Vector;

namespace detail {

using gpu_sim::LaunchStats;

/// Cross-device halo-exchange timeline, accumulated per sharded op. The
/// per-shard contexts each keep honest stream timelines (uploads ride their
/// transfer streams, kernels their compute streams), but those clocks are
/// not comparable across contexts — so the op also tracks one op-local
/// timeline: uploads serialize on the shared host link; a shard's kernel
/// starts when its upload lands and its context's previous kernel is done;
/// and every second an upload spends underneath an earlier shard's running
/// kernel is exchange time hidden by the pipeline.
class HaloTimeline {
 public:
  /// Account one shard's exchange+compute leg. @p up_s is the modeled
  /// duration of its halo transfers, @p kernel_s of its kernel.
  void add_shard(gpu_sim::Context* ctx, double up_s, double kernel_s) {
    const double up_start = up_end_;
    up_end_ = up_start + up_s;
    // Hidden = overlap of this upload with already-running kernels.
    for (const auto& [k_start, k_end] : kernels_) {
      const double lo = std::max(up_start, k_start);
      const double hi = std::min(up_end_, k_end);
      if (hi > lo) hidden_ += hi - lo;
    }
    double k_start = up_end_;
    for (const auto& [c, k_end] : ctx_busy_until_)
      if (c == ctx) k_start = std::max(k_start, k_end);
    const double k_end = k_start + kernel_s;
    kernels_.emplace_back(k_start, k_end);
    bool found = false;
    for (auto& [c, busy] : ctx_busy_until_)
      if (c == ctx) {
        busy = k_end;
        found = true;
      }
    if (!found) ctx_busy_until_.emplace_back(ctx, k_end);
  }

  double hidden_s() const { return hidden_; }

 private:
  double up_end_ = 0.0;
  double hidden_ = 0.0;
  std::vector<std::pair<double, double>> kernels_;
  std::vector<std::pair<gpu_sim::Context*, double>> ctx_busy_until_;
};

/// Lowering helpers for the delegated tier: ShardedMatrix operands become
/// their monolithic home views, sharded matrix masks are re-described over
/// the mask's home view, everything else passes through untouched. The
/// pass-through is constrained rather than a plain catch-all: an unconstrained
/// `X&&` would beat the const& overloads for non-const and rvalue sharded
/// operands (less cv-qualified reference binding) and leak ShardedMatrix
/// straight into the single-device pipelines.
template <typename X>
struct is_sharded_operand : std::false_type {};
template <typename T>
struct is_sharded_operand<ShardedMatrix<T>> : std::true_type {};
template <typename MT>
struct is_sharded_operand<OutputDescriptor<ShardedMatrix<MT>>>
    : std::true_type {};

template <typename T>
const Matrix<T>& lower(const ShardedMatrix<T>& m) {
  return m.home();
}

template <typename MT>
OutputDescriptor<Matrix<MT>> lower(
    const OutputDescriptor<ShardedMatrix<MT>>& out) {
  const Matrix<MT>* mask =
      out.mask.mask != nullptr ? &out.mask.mask->home() : nullptr;
  return {{mask, out.mask.complement, out.mask.structural}, out.replace};
}

template <typename X>
  requires(!is_sharded_operand<std::remove_cvref_t<X>>::value)
decltype(auto) lower(X&& x) {
  return std::forward<X>(x);
}

/// Drain any pending fusion nodes that touch a sharded op's operands — the
/// sharded paths read vector device memory directly, so recorded producers
/// must land first (same contract as the container read hooks).
template <typename MObj>
void sync_operands(const void* w, const void* u,
                   const OutputDescriptor<MObj>& out) {
  sparse::fusion_sync_if_touches(w);
  sparse::fusion_sync_if_touches(u);
  sparse::fusion_sync_if_touches(gpu_backend::detail::mask_addr(out));
}

}  // namespace detail

// ===========================================================================
// Tier 2: pure vector ops — the single-device implementations verbatim.
// ===========================================================================

using gpu_backend::apply_indexed_vec;
using gpu_backend::apply_vec;
using gpu_backend::assign_vec;
using gpu_backend::assign_vec_constant;
using gpu_backend::ewise_add_vec;
using gpu_backend::ewise_mult_vec;
using gpu_backend::extract_vec;
using gpu_backend::reduce_vec_to_scalar;
using gpu_backend::select_vec;

// ===========================================================================
// Tier 1: sharded mxv
// ===========================================================================

template <typename WT, typename MObj, typename Accum, typename SR,
          typename AT, typename UT>
void mxv(Vector<WT>& w, const OutputDescriptor<MObj>& out, Accum accum, SR sr,
         const ShardedMatrix<AT>& A, const Vector<UT>& u) {
  detail::sync_operands(&w, &u, out);
  const auto& shards = A.shards();
  if (shards.size() <= 1) {
    // Single-shard passthrough: the exact GpuSim pipeline (adaptive kernel
    // selection, direction engine, fusion recording) on the home view.
    gpu_backend::mxv(w, out, accum, sr, A.home(), u);
    return;
  }

  using detail::LaunchStats;
  using ZT = typename SR::result_type;
  gpu_sim::Context& home = w.context();
  const IndexType n = A.nrows();
  const std::uint64_t idx = sizeof(IndexType);

  gpu_sim::device_vector<ZT> t_vals(n, home);
  gpu_sim::device_vector<std::uint8_t> t_pres(n, home);
  gpu_sim::fill(t_pres, std::uint8_t{0});

  const UT* uv = u.values().data();
  const std::uint8_t* up = u.present().data();
  ZT* tv = t_vals.data();
  std::uint8_t* tp = t_pres.data();
  const SR sem = sr;

  detail::HaloTimeline timeline;
  std::uint64_t halo_bytes = 0;
  const std::size_t home_ts = home.transfer_stream();

  for (const auto& sv : shards) {
    if (!sv.mat || sv.meta.nnz == 0) continue;  // rows stay absent in T̃
    gpu_sim::Context& sc = *sv.ctx;
    const IndexType r0 = sv.meta.row_begin;
    const IndexType rows = sv.meta.rows();
    const IndexType c0 = sv.meta.col_begin;
    const IndexType hc = sv.meta.halo_cols();
    const std::uint64_t snnz = sv.meta.nnz;

    if (&sc == &home) {
      // Home-resident shard: its slice and the input vector share a device,
      // so there is no halo to exchange — the kernel reads u and writes its
      // T̃ rows in place. Besides skipping the self-broadcast, this keeps
      // the home arena free of staging buffers, which matters because home
      // also holds the op working set the other contexts don't carry.
      const IndexType* soffs = sv.mat->row_offsets().data();
      const IndexType* scols = sv.mat->col_indices().data();
      const AT* savals = sv.mat->values().data();
      ZT* stv = tv + r0;
      std::uint8_t* stp = tp + r0;
      const std::uint64_t entry = idx + sizeof(AT) + sizeof(UT) + 1;
      const double k_before = sc.stats().simulated_kernel_time_s;
      sc.launch_n(rows,
                  LaunchStats{2 * snnz, snnz * entry + (rows + 1) * idx,
                              rows * (sizeof(ZT) + 1)},
                  [=](std::size_t i) {
                    ZT acc = sem.zero();
                    bool any = false;
                    for (IndexType k = soffs[i]; k < soffs[i + 1]; ++k) {
                      const IndexType c = scols[k];
                      if (up[c]) {
                        acc = sem.add(acc, sem.mult(savals[k], uv[c]));
                        any = true;
                      }
                    }
                    if (any) {
                      stv[i] = acc;
                      stp[i] = 1;
                    }
                  });
      timeline.add_shard(&sc, 0.0,
                         sc.stats().simulated_kernel_time_s - k_before);
      continue;
    }

    // --- Halo broadcast: u[c0, c1) values+presence, home -> host staging
    // -> shard, each leg on its context's transfer stream so the copy rides
    // under whatever kernel is running.
    const std::size_t in_bytes = hc * (sizeof(UT) + 1);
    const std::unique_ptr<UT[]> h_uv(new UT[hc]);
    std::vector<std::uint8_t> h_up(hc);
    home.copy_d2h_async(h_uv.get(), uv + c0, hc * sizeof(UT), home_ts);
    home.copy_d2h_async(h_up.data(), up + c0, hc, home_ts);
    gpu_sim::device_vector<UT> d_uv(hc, sc);
    gpu_sim::device_vector<std::uint8_t> d_up(hc, sc);
    const std::size_t sc_ts = sc.transfer_stream();
    sc.copy_h2d_async(d_uv.data(), h_uv.get(), hc * sizeof(UT), sc_ts);
    sc.copy_h2d_async(d_up.data(), h_up.data(), hc, sc_ts);
    sc.stream_wait(0, sc.stream_clock_s(sc_ts));  // kernel waits for halo
    halo_bytes += 2 * in_bytes;

    // --- Per-shard row-parallel gather: the monolithic CSR kernel's
    // ascending-k zero-seeded fold, rows renumbered to the block, columns
    // offset into the halo slice. Each output row is computed whole here,
    // so concatenation is bit-exact.
    gpu_sim::device_vector<ZT> s_vals(rows, sc);
    gpu_sim::device_vector<std::uint8_t> s_pres(rows, sc);
    gpu_sim::fill(s_pres, std::uint8_t{0});
    const IndexType* soffs = sv.mat->row_offsets().data();
    const IndexType* scols = sv.mat->col_indices().data();
    const AT* savals = sv.mat->values().data();
    const UT* huv = d_uv.data();
    const std::uint8_t* hup = d_up.data();
    ZT* stv = s_vals.data();
    std::uint8_t* stp = s_pres.data();
    const std::uint64_t entry = idx + sizeof(AT) + sizeof(UT) + 1;
    const double k_before = sc.stats().simulated_kernel_time_s;
    sc.launch_n(rows,
                LaunchStats{2 * snnz, snnz * entry + (rows + 1) * idx,
                            rows * (sizeof(ZT) + 1)},
                [=](std::size_t i) {
                  ZT acc = sem.zero();
                  bool any = false;
                  for (IndexType k = soffs[i]; k < soffs[i + 1]; ++k) {
                    const IndexType lc = scols[k] - c0;
                    if (hup[lc]) {
                      acc = sem.add(acc, sem.mult(savals[k], huv[lc]));
                      any = true;
                    }
                  }
                  if (any) {
                    stv[i] = acc;
                    stp[i] = 1;
                  }
                });
    const double kernel_s = sc.stats().simulated_kernel_time_s - k_before;

    // --- Gather the block's output rows back to the home T̃ slice.
    const std::size_t out_bytes = rows * (sizeof(ZT) + 1);
    sc.stream_wait(sc_ts, sc.stream_clock_s(0));  // download after kernel
    const std::unique_ptr<ZT[]> h_tv(new ZT[rows]);
    std::vector<std::uint8_t> h_tp(rows);
    sc.copy_d2h_async(h_tv.get(), stv, rows * sizeof(ZT), sc_ts);
    sc.copy_d2h_async(h_tp.data(), stp, rows, sc_ts);
    home.copy_h2d_async(tv + r0, h_tv.get(), rows * sizeof(ZT), home_ts);
    home.copy_h2d_async(tp + r0, h_tp.data(), rows, home_ts);
    halo_bytes += 2 * out_bytes;

    const auto& hp = home.properties();
    const auto& sp = sc.properties();
    timeline.add_shard(&sc,
                       gpu_sim::modeled_transfer_time(hp, in_bytes) +
                           gpu_sim::modeled_transfer_time(sp, in_bytes),
                       kernel_s);
  }

  // The epilogue reads T̃ on the compute stream; make it wait for the last
  // returned block.
  home.stream_wait(0, home.stream_clock_s(home_ts));
  home.note_halo_exchange(shards.size(), halo_bytes, timeline.hidden_s());

  pipeline::write_vector(w, t_vals, t_pres, out, accum);
}

// ===========================================================================
// Tier 1: sharded vxm
// ===========================================================================

template <typename WT, typename MObj, typename Accum, typename SR,
          typename UT, typename AT>
void vxm(Vector<WT>& w, const OutputDescriptor<MObj>& out, Accum accum, SR sr,
         const Vector<UT>& u, const ShardedMatrix<AT>& A) {
  detail::sync_operands(&w, &u, out);
  const auto& shards = A.shards();
  if (shards.size() <= 1) {
    gpu_backend::vxm(w, out, accum, sr, u, A.home());
    return;
  }

  using detail::LaunchStats;
  using ZT = typename SR::result_type;
  gpu_sim::Context& home = w.context();
  const std::uint64_t idx = sizeof(IndexType);

  gpu_sim::device_vector<ZT> t_vals(w.size(), home);
  gpu_sim::device_vector<std::uint8_t> t_pres(w.size(), home);
  gpu_sim::fill(t_pres, std::uint8_t{0});

  const UT* uv = u.values().data();
  ZT* tv = t_vals.data();
  std::uint8_t* tp = t_pres.data();
  const SR sem = sr;

  // Sparse frontier on the home vector (cached compaction, ascending).
  const auto& frontier = u.sparse_indices();
  const IndexType frontier_rows = static_cast<IndexType>(frontier.size());
  const IndexType* fidx = frontier.data();

  detail::HaloTimeline timeline;
  std::uint64_t halo_bytes = 0;
  const std::size_t home_ts = home.transfer_stream();

  // Home-side merge staging, fixed size: the pair return is folded into T̃
  // in bounded chunks so the home context's transient footprint stays O(1)
  // in shard nnz. This matters precisely in the oversized regime sharding
  // exists for — home must hold its own row-block slice, the op's vectors,
  // AND this staging at the same time, inside an arena the whole graph
  // already does not fit.
  constexpr std::uint64_t kMergeChunk = 256;
  gpu_sim::device_vector<IndexType> m_j(kMergeChunk, home);
  gpu_sim::device_vector<ZT> m_v(kMergeChunk, home);
  IndexType* const mj = m_j.data();
  ZT* const mv = m_v.data();

  for (const auto& sv : shards) {
    if (!sv.mat || sv.meta.nnz == 0) continue;
    gpu_sim::Context& sc = *sv.ctx;
    const IndexType r0 = sv.meta.row_begin;
    const IndexType r1 = sv.meta.row_end;

    // Frontier slice owned by this row block (frontier is sorted).
    const IndexType* f_lo = std::lower_bound(fidx, fidx + frontier_rows, r0);
    const IndexType* f_hi = std::lower_bound(f_lo, fidx + frontier_rows, r1);
    const IndexType fcount = static_cast<IndexType>(f_hi - f_lo);
    if (fcount == 0) continue;
    const IndexType f_off = static_cast<IndexType>(f_lo - fidx);

    const IndexType* soffs = sv.mat->row_offsets().data();

    if (&sc == &home) {
      // Home-resident shard: scatter straight into T̃ — no pack, no
      // self-halo, no pair staging. The combination order is untouched:
      // this shard's products are exactly the monolithic scatter's leading
      // run for these frontier rows (ascending frontier, ascending q), and
      // direct first-store/left-fold reproduces it product for product.
      const IndexType* scols = sv.mat->col_indices().data();
      const AT* savals = sv.mat->values().data();
      std::uint64_t ecount = 0;
      for (const IndexType* p = f_lo; p != f_hi; ++p) {
        const IndexType lr = *p - r0;
        ecount += soffs[lr + 1] - soffs[lr];
      }
      sc.account_kernel(LaunchStats{fcount, fcount * 3 * idx, 64});
      if (ecount == 0) continue;
      const IndexType* f = fidx;
      const double k_before = sc.stats().simulated_kernel_time_s;
      gpu_backend::detail::serial_kernel(
          sc,
          LaunchStats{2 * ecount,
                      fcount * (3 * idx + sizeof(UT)) +
                          ecount * (idx + sizeof(AT)),
                      ecount * (sizeof(ZT) + 1)},
          [&] {
            for (IndexType p = 0; p < fcount; ++p) {
              const IndexType r = f[f_off + p];
              const IndexType lr = r - r0;
              const UT uval = uv[r];
              for (IndexType q = soffs[lr]; q < soffs[lr + 1]; ++q) {
                const IndexType j = scols[q];
                const ZT prod = sem.mult(uval, savals[q]);
                if (tp[j]) {
                  tv[j] = sem.add(tv[j], prod);
                } else {
                  tv[j] = prod;
                  tp[j] = 1;
                }
              }
            }
          });
      timeline.add_shard(&sc, 0.0,
                         sc.stats().simulated_kernel_time_s - k_before);
      continue;
    }

    // --- Halo broadcast: pack (local frontier row, u value) pairs on the
    // home device, then ship them host -> shard on the transfer streams.
    gpu_sim::device_vector<IndexType> pk_rows(fcount, home);
    gpu_sim::device_vector<UT> pk_vals(fcount, home);
    {
      IndexType* pr = pk_rows.data();
      UT* pvv = pk_vals.data();
      const IndexType* f = fidx;
      const UT* uvp = uv;
      home.launch_n(fcount,
                    LaunchStats{2 * fcount,
                                fcount * (idx + sizeof(UT)),
                                fcount * (idx + sizeof(UT))},
                    [=](std::size_t p) {
                      pr[p] = f[f_off + p] - r0;
                      pvv[p] = uvp[f[f_off + p]];
                    });
    }
    const std::size_t in_bytes = fcount * (idx + sizeof(UT));
    std::vector<IndexType> h_f(fcount);
    const std::unique_ptr<UT[]> h_uv(new UT[fcount]);
    home.copy_d2h_async(h_f.data(), pk_rows.data(), fcount * idx, home_ts);
    home.copy_d2h_async(h_uv.get(), pk_vals.data(), fcount * sizeof(UT),
                        home_ts);
    gpu_sim::device_vector<IndexType> d_f(fcount, sc);
    gpu_sim::device_vector<UT> d_uv(fcount, sc);
    const std::size_t sc_ts = sc.transfer_stream();
    sc.copy_h2d_async(d_f.data(), h_f.data(), fcount * idx, sc_ts);
    sc.copy_h2d_async(d_uv.data(), h_uv.get(), fcount * sizeof(UT), sc_ts);
    sc.stream_wait(0, sc.stream_clock_s(sc_ts));
    halo_bytes += 2 * in_bytes;

    // Emission count: flat out-edges of the shard-local frontier.
    std::uint64_t ecount = 0;
    for (IndexType p = 0; p < fcount; ++p) {
      const IndexType lr = h_f[p];
      ecount += soffs[lr + 1] - soffs[lr];
    }
    sc.account_kernel(LaunchStats{fcount, fcount * 3 * idx, 64});
    if (ecount == 0) continue;

    // --- Per-shard scatter, de-fanged: instead of folding into a local t
    // (which would re-associate the monolithic first-store-direct order),
    // emit the raw (column, product) pairs in scatter order.
    gpu_sim::device_vector<IndexType> pair_j(ecount, sc);
    gpu_sim::device_vector<ZT> pair_v(ecount, sc);
    const IndexType* scols = sv.mat->col_indices().data();
    const AT* savals = sv.mat->values().data();
    const IndexType* sfr = d_f.data();
    const UT* suv = d_uv.data();
    IndexType* pj = pair_j.data();
    ZT* pv = pair_v.data();
    const double k_before = sc.stats().simulated_kernel_time_s;
    gpu_backend::detail::serial_kernel(
        sc,
        LaunchStats{2 * ecount,
                    fcount * (3 * idx + sizeof(UT)) +
                        ecount * (idx + sizeof(AT)),
                    ecount * (idx + sizeof(ZT))},
        [&] {
          std::uint64_t e = 0;
          for (IndexType p = 0; p < fcount; ++p) {
            const IndexType lr = sfr[p];
            const UT uval = suv[p];
            for (IndexType q = soffs[lr]; q < soffs[lr + 1]; ++q) {
              pj[e] = scols[q];
              pv[e] = sem.mult(uval, savals[q]);
              ++e;
            }
          }
        });
    const double kernel_s = sc.stats().simulated_kernel_time_s - k_before;

    // --- Return the pair list and left-fold it into T̃ on the home device,
    // in plan order: first product lands direct, later ones fold — the
    // monolithic scatter's exact combination order.
    const std::size_t out_bytes = ecount * (idx + sizeof(ZT));
    sc.stream_wait(sc_ts, sc.stream_clock_s(0));
    std::vector<IndexType> h_pj(ecount);
    const std::unique_ptr<ZT[]> h_pv(new ZT[ecount]);
    sc.copy_d2h_async(h_pj.data(), pj, ecount * idx, sc_ts);
    sc.copy_d2h_async(h_pv.get(), pv, ecount * sizeof(ZT), sc_ts);
    halo_bytes += 2 * out_bytes;
    for (std::uint64_t base = 0; base < ecount; base += kMergeChunk) {
      const std::uint64_t len =
          std::min<std::uint64_t>(kMergeChunk, ecount - base);
      home.copy_h2d_async(mj, h_pj.data() + base, len * idx, home_ts);
      home.copy_h2d_async(mv, h_pv.get() + base, len * sizeof(ZT), home_ts);
      home.stream_wait(0, home.stream_clock_s(home_ts));
      // Chunks arrive in emission order, so the left-fold below still
      // combines products in the monolithic scatter's exact order.
      gpu_backend::detail::serial_kernel(
          home,
          LaunchStats{2 * len, len * (idx + sizeof(ZT) + 1),
                      len * (sizeof(ZT) + 1)},
          [&] {
            for (std::uint64_t e = 0; e < len; ++e) {
              const IndexType j = mj[e];
              if (tp[j]) {
                tv[j] = sem.add(tv[j], mv[e]);
              } else {
                tv[j] = mv[e];
                tp[j] = 1;
              }
            }
          });
    }

    const auto& hp = home.properties();
    const auto& sp = sc.properties();
    timeline.add_shard(&sc,
                       gpu_sim::modeled_transfer_time(hp, in_bytes) +
                           gpu_sim::modeled_transfer_time(sp, in_bytes),
                       kernel_s);
  }

  home.stream_wait(0, home.stream_clock_s(home_ts));
  home.note_halo_exchange(shards.size(), halo_bytes, timeline.hidden_s());

  pipeline::write_vector(w, t_vals, t_pres, out, accum);
}

// ===========================================================================
// Tier 3: delegated matrix ops (monolithic home view, host CSR re-synced)
// ===========================================================================

#define GBTL_SHARD_MAT_OUT(op_name)                                        \
  template <typename CT, typename... Rest>                                 \
  void op_name(ShardedMatrix<CT>& C, Rest&&... rest) {                     \
    {                                                                      \
      gpu_sim::ScopedDevice bind_home(C.context());                        \
      gpu_backend::op_name(C.mutable_home(),                               \
                           detail::lower(std::forward<Rest>(rest))...);    \
    }                                                                      \
    C.sync_host_from_home();                                               \
  }

GBTL_SHARD_MAT_OUT(mxm)
GBTL_SHARD_MAT_OUT(ewise_add_mat)
GBTL_SHARD_MAT_OUT(ewise_mult_mat)
GBTL_SHARD_MAT_OUT(apply_mat)
GBTL_SHARD_MAT_OUT(apply_indexed_mat)
GBTL_SHARD_MAT_OUT(transpose_op)
GBTL_SHARD_MAT_OUT(extract_mat)
GBTL_SHARD_MAT_OUT(assign_mat)
GBTL_SHARD_MAT_OUT(assign_mat_constant)
GBTL_SHARD_MAT_OUT(kronecker)
GBTL_SHARD_MAT_OUT(select_mat)

#undef GBTL_SHARD_MAT_OUT

template <typename WT, typename MObj, typename Accum, typename Monoid,
          typename AT>
void reduce_mat_to_vec(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                       Accum accum, Monoid monoid,
                       const ShardedMatrix<AT>& A) {
  gpu_backend::reduce_mat_to_vec(w, out, accum, monoid, A.home());
}

template <typename ST, typename Accum, typename Monoid, typename AT>
void reduce_mat_to_scalar(ST& s, Accum accum, Monoid monoid,
                          const ShardedMatrix<AT>& A) {
  gpu_backend::reduce_mat_to_scalar(s, accum, monoid, A.home());
}

template <typename WT, typename MObj, typename Accum, typename AT>
void extract_col(Vector<WT>& w, const OutputDescriptor<MObj>& out,
                 Accum accum, const ShardedMatrix<AT>& A,
                 const IndexArrayType& row_indices, IndexType col) {
  gpu_backend::extract_col(w, out, accum, A.home(), row_indices, col);
}

/// Materialized transpose — a pure host-CSR permutation (tuples re-sorted
/// column-major), so it never needs a monolithic device image and stays
/// legal for oversized graphs.
template <typename T>
ShardedMatrix<T> transposed(const ShardedMatrix<T>& A) {
  IndexArrayType r, c;
  std::vector<T> v;
  A.extract_tuples(r, c, v);
  ShardedMatrix<T> At(A.ncols(), A.nrows());
  At.build(c, r, v.begin(), static_cast<IndexType>(v.size()),
           [](const T&, const T& b) { return b; });
  return At;
}

}  // namespace grb::gpu_shard
