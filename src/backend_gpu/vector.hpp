#pragma once

/// @file backend_gpu/vector.hpp
/// GPU-backend vector: dense value array + dense presence bitmap, both in
/// simulated device memory, plus a lazily-materialized sparse index list.
/// Dense storage is the standard GPU choice for GraphBLAS vectors —
/// frontiers flip between sparse and dense across BFS levels — but the
/// direction-optimizing traversal engine also wants the frontier as a
/// compacted index list so push kernels can be frontier-sized instead of
/// n-sized. The sparse form is a cache over the bitmap: materialized on
/// demand (one stats-counted device compaction), invalidated by any write.
/// nvals() is cached the same way — BFS polls it every level.

#include <utility>
#include <vector>

#include "gbtl/types.hpp"
#include "gpu_sim/algorithms.hpp"
#include "gpu_sim/context.hpp"
#include "gpu_sim/device_vector.hpp"
#include "sparse/fusion_plan.hpp"

namespace grb::gpu_backend {

template <typename T>
class Vector {
 public:
  using ScalarType = T;

  Vector() = default;
  explicit Vector(IndexType size, gpu_sim::Context& ctx = gpu_sim::device())
      : size_(size), ctx_(&ctx), values_(size, ctx), present_(size, ctx) {
    if (size == 0)
      throw InvalidValueException("vector size must be positive");
    gpu_sim::fill(values_, T{});
    gpu_sim::fill(present_, std::uint8_t{0});
    nvals_cache_ = 0;
    nvals_valid_ = true;
  }

  // Copies carry only the canonical dense form; the sparse/nvals caches are
  // rebuilt on demand so a copy does not pay (or distort) d2d traffic for
  // cache state.
  //
  // Copy/move/destroy are materialization points for the lazy op-DAG when a
  // pending recorded op references the source or destination address: the
  // dag identifies containers by address, so storage must not move or die
  // (and device bytes must not be read or overwritten) under a pending op.
  // Touch-filtered so an unrelated temporary never cuts a fusion chain.
  Vector(const Vector& other)
      : size_((sparse::fusion_sync_if_touches(&other), other.size_)),
        ctx_(other.ctx_),
        values_(other.values_),
        present_(other.present_) {}
  Vector& operator=(const Vector& other) {
    if (this != &other) {
      sparse::fusion_sync_if_touches(this);
      sparse::fusion_sync_if_touches(&other);
      size_ = other.size_;
      ctx_ = other.ctx_;
      values_ = other.values_;
      present_ = other.present_;
      invalidate_caches();
    }
    return *this;
  }
  Vector(Vector&& other) noexcept
      : size_((sparse::fusion_sync_if_touches(&other), other.size_)),
        ctx_(other.ctx_),
        values_(std::move(other.values_)),
        present_(std::move(other.present_)),
        nvals_cache_(other.nvals_cache_),
        nvals_valid_(other.nvals_valid_),
        sparse_indices_(std::move(other.sparse_indices_)),
        sparse_valid_(other.sparse_valid_) {}
  Vector& operator=(Vector&& other) noexcept {
    if (this != &other) {
      sparse::fusion_sync_if_touches(this);
      sparse::fusion_sync_if_touches(&other);
      size_ = other.size_;
      ctx_ = other.ctx_;
      values_ = std::move(other.values_);
      present_ = std::move(other.present_);
      nvals_cache_ = other.nvals_cache_;
      nvals_valid_ = other.nvals_valid_;
      sparse_indices_ = std::move(other.sparse_indices_);
      sparse_valid_ = other.sparse_valid_;
    }
    return *this;
  }
  ~Vector() { sparse::fusion_sync_if_touches(this); }

  IndexType size() const { return size_; }
  gpu_sim::Context& context() const { return *ctx_; }

  IndexType nvals() const {
    sparse::fusion_sync_if_touches(this);  // host read of a pending output
    if (!nvals_valid_) {
      nvals_cache_ = static_cast<IndexType>(gpu_sim::count_if(
          present_, [](std::uint8_t p) { return p != 0; }));
      nvals_valid_ = true;
      ctx_->note_nvals_recount();
    }
    return nvals_cache_;
  }

  /// The compacted sparse form: indices of present entries, ascending.
  /// Materializes (and stats-counts) at most once per dirty epoch; the
  /// element count doubles as a free nvals.
  const gpu_sim::device_vector<IndexType>& sparse_indices() const {
    sparse::fusion_sync_if_touches(this);  // reads the presence bitmap
    if (!sparse_valid_) {
      sparse_indices_ = gpu_sim::device_vector<IndexType>(*ctx_);
      const std::size_t kept =
          gpu_sim::flagged_indices(present_, sparse_indices_);
      sparse_valid_ = true;
      nvals_cache_ = static_cast<IndexType>(kept);
      nvals_valid_ = true;
      ctx_->note_frontier_compaction();
    }
    return sparse_indices_;
  }

  void clear() {
    sparse::fusion_sync_if_touches(this);
    gpu_sim::fill(values_, T{});
    gpu_sim::fill(present_, std::uint8_t{0});
    invalidate_caches();
    nvals_cache_ = 0;
    nvals_valid_ = true;
  }

  /// GrB_Vector_resize: grow with empty space / shrink dropping the tail.
  void resize(IndexType size) {
    if (size == 0)
      throw InvalidValueException("resize: size must be positive");
    sparse::fusion_sync_if_touches(this);  // storage may move under resize
    const IndexType old = size_;
    values_.resize(size);
    present_.resize(size);
    size_ = size;
    invalidate_caches();
    if (size > old) {
      // Zero-fill the fresh region (device kernels over the suffix).
      T* v = values_.data();
      std::uint8_t* p = present_.data();
      const IndexType fresh = size - old;
      ctx_->launch_n(fresh,
                     gpu_sim::LaunchStats{fresh, 0, fresh * (sizeof(T) + 1)},
                     [=](std::size_t i) {
                       v[old + i] = T{};
                       p[old + i] = 0;
                     });
    }
  }

  template <typename VIt, typename DupOp>
  void build(const IndexArrayType& indices, VIt values_begin, IndexType n,
             DupOp dup) {
    if (indices.size() < n)
      throw InvalidValueException("build: index array shorter than n");
    sparse::fusion_sync_if_touches(this);
    // Assemble on host (dup handling is order-sensitive), then one upload.
    std::vector<T> vals(size_, T{});
    std::vector<std::uint8_t> pres(size_, 0);
    for (IndexType k = 0; k < n; ++k) {
      const IndexType i = indices[k];
      if (i >= size_)
        throw IndexOutOfBoundsException("build: tuple outside vector size");
      const T v = *(values_begin + static_cast<std::ptrdiff_t>(k));
      if (pres[i]) {
        vals[i] = dup(vals[i], v);
      } else {
        pres[i] = 1;
        vals[i] = v;
      }
    }
    values_.copy_from_host(vals);
    present_.copy_from_host(pres);
    invalidate_caches();
  }

  bool has_element(IndexType i) const {
    bounds_check(i);
    sparse::fusion_sync_if_touches(this);
    std::uint8_t p;
    ctx_->copy_d2h(&p, present_.data() + i, 1);
    return p != 0;
  }

  T get_element(IndexType i) const {
    bounds_check(i);
    if (!has_element(i)) throw NoValueException("vector getElement");
    T v;
    ctx_->copy_d2h(&v, values_.data() + i, sizeof(T));
    return v;
  }

  void set_element(IndexType i, const T& v) {
    bounds_check(i);
    sparse::fusion_sync_if_touches(this);
    const std::uint8_t one = 1;
    ctx_->copy_h2d(values_.data() + i, &v, sizeof(T));
    ctx_->copy_h2d(present_.data() + i, &one, 1);
    invalidate_caches();
  }

  void remove_element(IndexType i) {
    bounds_check(i);
    sparse::fusion_sync_if_touches(this);
    const std::uint8_t zero = 0;
    const T blank{};
    ctx_->copy_h2d(present_.data() + i, &zero, 1);
    ctx_->copy_h2d(values_.data() + i, &blank, sizeof(T));
    invalidate_caches();
  }

  void extract_tuples(IndexArrayType& indices, std::vector<T>& values) const {
    sparse::fusion_sync_if_touches(this);
    const auto vals = values_.to_host();
    const auto pres = present_.to_host();
    indices.clear();
    values.clear();
    for (IndexType i = 0; i < size_; ++i) {
      if (pres[i]) {
        indices.push_back(i);
        values.push_back(vals[i]);
      }
    }
  }

  // --- Device-side access for the operation pipelines --------------------
  // The non-const accessors hand out mutable storage (write_vector writes
  // through them), so taking one dirties the caches.
  gpu_sim::device_vector<T>& values() {
    invalidate_caches();
    return values_;
  }
  const gpu_sim::device_vector<T>& values() const { return values_; }
  gpu_sim::device_vector<std::uint8_t>& present() {
    invalidate_caches();
    return present_;
  }
  const gpu_sim::device_vector<std::uint8_t>& present() const {
    return present_;
  }

  friend bool operator==(const Vector& a, const Vector& b) {
    sparse::fusion_sync_if_touches(&a);
    sparse::fusion_sync_if_touches(&b);
    if (a.size_ != b.size_) return false;
    const auto av = a.values_.to_host();
    const auto ap = a.present_.to_host();
    const auto bv = b.values_.to_host();
    const auto bp = b.present_.to_host();
    for (IndexType i = 0; i < a.size_; ++i) {
      if (ap[i] != bp[i]) return false;
      if (ap[i] && !(av[i] == bv[i])) return false;
    }
    return true;
  }

 private:
  void bounds_check(IndexType i) const {
    if (i >= size_) throw IndexOutOfBoundsException("vector element access");
  }

  void invalidate_caches() {
    nvals_valid_ = false;
    sparse_valid_ = false;
  }

  IndexType size_ = 0;
  gpu_sim::Context* ctx_ = nullptr;
  gpu_sim::device_vector<T> values_;
  gpu_sim::device_vector<std::uint8_t> present_;

  // Lazy caches over the bitmap (see file comment).
  mutable IndexType nvals_cache_ = 0;
  mutable bool nvals_valid_ = false;
  mutable gpu_sim::device_vector<IndexType> sparse_indices_;
  mutable bool sparse_valid_ = false;
};

}  // namespace grb::gpu_backend
