#pragma once

/// @file backend_gpu/sharded_matrix.hpp
/// Row-block sharded sparse matrix for the GpuShard backend: "a graph on a
/// placement" rather than "a graph on a device". The canonical storage is a
/// host-side CSR (plain std::vectors, never charged against any device
/// arena) — deliberately, because the whole point of sharding is graphs
/// whose CSR does NOT fit one simulated device, so no single monolithic
/// device copy can be the source of truth. Two lazily built, independently
/// invalidated device projections hang off it:
///
///  - shards(): one plain gpu_backend::Matrix per row block of the shard
///    plan (sparse/shard_plan.hpp), pinned round-robin over the calling
///    thread's gpu_sim placement. This is what the sharded mxv/vxm in
///    sharded_ops.hpp consume.
///  - home(): a monolithic gpu_backend::Matrix on the home device, used to
///    delegate the long tail of matrix ops (mxm, apply_mat, reduce, ...)
///    unchanged. Only legal when the graph fits one arena — building it for
///    an oversized graph surfaces DeviceBadAlloc exactly like the
///    single-device world would.
///
/// Any frontend mutation (build/clear/resize/setElement/...) edits the host
/// CSR and drops both projections.

#include <algorithm>
#include <numeric>
#include <optional>
#include <utility>
#include <vector>

#include "backend_gpu/matrix.hpp"
#include "gbtl/types.hpp"
#include "gpu_sim/context.hpp"
#include "gpu_sim/placement.hpp"
#include "sparse/shard_plan.hpp"

namespace grb::gpu_backend {

template <typename T>
class ShardedMatrix {
 public:
  using ScalarType = T;

  /// One materialized row block: the plan entry plus a device matrix whose
  /// rows are renumbered to [0, meta.rows()) on its pinned context. Empty
  /// row blocks carry no matrix.
  struct ShardView {
    sparse::Shard meta;
    gpu_sim::Context* ctx = nullptr;
    std::optional<Matrix<T>> mat;
  };

  ShardedMatrix(IndexType nrows, IndexType ncols)
      : nrows_(nrows),
        ncols_(ncols),
        home_ctx_(&gpu_sim::device()),
        placement_(gpu_sim::placement_or_default()),
        row_ptr_(nrows + 1, 0) {
    if (nrows == 0 || ncols == 0)
      throw InvalidValueException("matrix dimensions must be positive");
  }

  // Copies/moves carry only the host CSR; the device projections are
  // rebuilt on demand (mirrors gpu_backend::Matrix dropping its CSC cache).
  ShardedMatrix(const ShardedMatrix& other)
      : nrows_(other.nrows_),
        ncols_(other.ncols_),
        home_ctx_(other.home_ctx_),
        placement_(other.placement_),
        row_ptr_(other.row_ptr_),
        cols_(other.cols_),
        vals_(other.vals_) {}
  ShardedMatrix& operator=(const ShardedMatrix& other) {
    if (this != &other) {
      nrows_ = other.nrows_;
      ncols_ = other.ncols_;
      home_ctx_ = other.home_ctx_;
      placement_ = other.placement_;
      row_ptr_ = other.row_ptr_;
      cols_ = other.cols_;
      vals_ = other.vals_;
      invalidate_device();
    }
    return *this;
  }
  ShardedMatrix(ShardedMatrix&&) noexcept = default;
  ShardedMatrix& operator=(ShardedMatrix&&) noexcept = default;

  IndexType nrows() const { return nrows_; }
  IndexType ncols() const { return ncols_; }
  IndexType nvals() const { return static_cast<IndexType>(cols_.size()); }
  gpu_sim::Context& context() const { return *home_ctx_; }
  const std::vector<gpu_sim::Context*>& placement() const {
    return placement_;
  }

  void clear() {
    std::fill(row_ptr_.begin(), row_ptr_.end(), IndexType{0});
    cols_.clear();
    vals_.clear();
    invalidate_device();
  }

  void resize(IndexType nrows, IndexType ncols) {
    if (nrows == 0 || ncols == 0)
      throw InvalidValueException("resize: dimensions must be positive");
    IndexArrayType r, c;
    std::vector<T> v;
    extract_tuples(r, c, v);
    nrows_ = nrows;
    ncols_ = ncols;
    row_ptr_.assign(nrows + 1, 0);
    cols_.clear();
    vals_.clear();
    IndexArrayType kr, kc;
    std::vector<T> kv;
    for (std::size_t k = 0; k < v.size(); ++k) {
      if (r[k] >= nrows || c[k] >= ncols) continue;
      kr.push_back(r[k]);
      kc.push_back(c[k]);
      kv.push_back(v[k]);
    }
    load_tuples_sorted(kr, kc, kv);
    invalidate_device();
  }

  /// Populate from host coordinate arrays; duplicates combine via @p dup in
  /// input-encounter order (left fold), matching the stable radix-sort +
  /// reduce_by_key pipeline of the single-device build.
  template <typename VIt, typename DupOp>
  void build(const IndexArrayType& row_idx, const IndexArrayType& col_idx,
             VIt values_begin, IndexType n, DupOp dup) {
    if (row_idx.size() < n || col_idx.size() < n)
      throw InvalidValueException("build: index arrays shorter than n");
    for (IndexType k = 0; k < n; ++k)
      if (row_idx[k] >= nrows_ || col_idx[k] >= ncols_)
        throw IndexOutOfBoundsException("build: tuple outside matrix shape");
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       if (row_idx[a] != row_idx[b])
                         return row_idx[a] < row_idx[b];
                       return col_idx[a] < col_idx[b];
                     });
    IndexArrayType r, c;
    std::vector<T> v;
    r.reserve(n);
    c.reserve(n);
    v.reserve(n);
    for (std::size_t p = 0; p < order.size(); ++p) {
      const std::size_t k = order[p];
      const T val = *(values_begin + static_cast<std::ptrdiff_t>(k));
      if (!v.empty() && r.back() == row_idx[k] && c.back() == col_idx[k]) {
        v.back() = dup(v.back(), val);
      } else {
        r.push_back(row_idx[k]);
        c.push_back(col_idx[k]);
        v.push_back(val);
      }
    }
    row_ptr_.assign(nrows_ + 1, 0);
    cols_.clear();
    vals_.clear();
    load_tuples_sorted(r, c, v);
    invalidate_device();
  }

  /// Row-major sorted tuple dump, straight off the host CSR.
  void extract_tuples(IndexArrayType& row_idx, IndexArrayType& col_idx,
                      std::vector<T>& values) const {
    row_idx.clear();
    col_idx.assign(cols_.begin(), cols_.end());
    values = vals_;
    row_idx.reserve(cols_.size());
    for (IndexType i = 0; i < nrows_; ++i)
      for (IndexType k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
        row_idx.push_back(i);
  }

  bool has_element(IndexType i, IndexType j) const {
    bounds_check(i, j);
    return find_position(i, j) != kNotFound;
  }

  T get_element(IndexType i, IndexType j) const {
    bounds_check(i, j);
    const IndexType pos = find_position(i, j);
    if (pos == kNotFound) throw NoValueException("matrix getElement");
    return vals_[pos];
  }

  void set_element(IndexType i, IndexType j, const T& v) {
    bounds_check(i, j);
    const IndexType pos = find_position(i, j);
    if (pos != kNotFound) {
      vals_[pos] = v;
      invalidate_device();
      return;
    }
    // Insert within row i keeping columns sorted.
    IndexType k = row_ptr_[i];
    while (k < row_ptr_[i + 1] && cols_[k] < j) ++k;
    cols_.insert(cols_.begin() + static_cast<std::ptrdiff_t>(k), j);
    vals_.insert(vals_.begin() + static_cast<std::ptrdiff_t>(k), v);
    for (IndexType r = i + 1; r <= nrows_; ++r) ++row_ptr_[r];
    invalidate_device();
  }

  void remove_element(IndexType i, IndexType j) {
    bounds_check(i, j);
    const IndexType pos = find_position(i, j);
    if (pos == kNotFound) return;
    cols_.erase(cols_.begin() + static_cast<std::ptrdiff_t>(pos));
    vals_.erase(vals_.begin() + static_cast<std::ptrdiff_t>(pos));
    for (IndexType r = i + 1; r <= nrows_; ++r) --row_ptr_[r];
    invalidate_device();
  }

  friend bool operator==(const ShardedMatrix& a, const ShardedMatrix& b) {
    return a.nrows_ == b.nrows_ && a.ncols_ == b.ncols_ &&
           a.row_ptr_ == b.row_ptr_ && a.cols_ == b.cols_ &&
           a.vals_ == b.vals_;
  }

  // --- Host CSR access (planner, halo slicing, transpose) -----------------
  const IndexArrayType& host_row_ptr() const { return row_ptr_; }
  const IndexArrayType& host_cols() const { return cols_; }
  const std::vector<T>& host_vals() const { return vals_; }

  /// Estimated device footprint of the *monolithic* CSR+CSC projection —
  /// what sharding exists to split up.
  std::uint64_t device_bytes_estimate() const {
    const std::uint64_t idx = sizeof(IndexType);
    const std::uint64_t nnz = cols_.size();
    return 2 * ((nrows_ + 1) * idx + nnz * (idx + sizeof(T)));
  }

  // --- Shard projection ----------------------------------------------------

  /// The shard plan this matrix would execute under right now (cheap when
  /// shards are already built; otherwise plans without materializing).
  sparse::ShardPlan plan() const {
    if (!shards_.empty()) {
      sparse::ShardPlan p;
      for (const ShardView& sv : shards_) p.shards.push_back(sv.meta);
      return p;
    }
    return make_plan();
  }

  /// Materialize (lazily, then cache) one device matrix per row block,
  /// pinned round-robin over the placement captured at construction.
  const std::vector<ShardView>& shards() const {
    if (shards_.empty()) build_shards();
    return shards_;
  }

  bool shards_built() const { return !shards_.empty(); }

  // --- Monolithic home projection ------------------------------------------

  /// The whole matrix as one gpu_backend::Matrix on the home context, for
  /// ops that have no sharded path. Throws DeviceBadAlloc when the graph
  /// genuinely does not fit the home arena.
  const Matrix<T>& home() const { return ensure_home(); }

  /// Mutable home view for ops that *write* a ShardedMatrix output through
  /// the single-device pipelines. Callers must follow the write with
  /// sync_host_from_home() so the host CSR becomes canonical again.
  Matrix<T>& mutable_home() { return ensure_home(); }

  /// Pull the (possibly op-written) home view back into the host CSR and
  /// drop the shard projection, which the write made stale.
  void sync_host_from_home() {
    if (!home_view_) return;
    IndexArrayType r, c;
    std::vector<T> v;
    {
      gpu_sim::ScopedDevice bind(*home_ctx_);
      home_view_->extract_tuples(r, c, v);
      nrows_ = home_view_->nrows();
      ncols_ = home_view_->ncols();
    }
    row_ptr_.assign(nrows_ + 1, 0);
    cols_.clear();
    vals_.clear();
    load_tuples_sorted(r, c, v);
    shards_.clear();
  }

 private:
  static constexpr IndexType kNotFound = ~IndexType{0};

  void invalidate_device() {
    shards_.clear();
    if (home_view_) {
      gpu_sim::ScopedDevice bind(*home_ctx_);
      home_view_.reset();
    }
  }

  /// Append already-(row, col)-sorted, duplicate-free tuples into the CSR
  /// arrays (row_ptr_ must be zeroed to nrows_+1 entries on entry).
  void load_tuples_sorted(const IndexArrayType& r, const IndexArrayType& c,
                          const std::vector<T>& v) {
    cols_.assign(c.begin(), c.end());
    vals_ = v;
    for (IndexType rr : r) ++row_ptr_[rr + 1];
    for (IndexType i = 0; i < nrows_; ++i) row_ptr_[i + 1] += row_ptr_[i];
  }

  /// What one row block actually charges against its device: the pool
  /// rounds every buffer to a power-of-two size class, so a slice can cost
  /// up to 2x its raw CSR bytes.
  static std::uint64_t max_shard_class_bytes(const sparse::ShardPlan& plan) {
    const std::uint64_t idx = sizeof(IndexType);
    std::uint64_t worst = 0;
    for (const sparse::Shard& sh : plan.shards)
      worst = std::max(
          worst,
          static_cast<std::uint64_t>(
              gpu_sim::Context::pool_class_bytes((sh.rows() + 1) * idx) +
              gpu_sim::Context::pool_class_bytes(sh.nnz * idx) +
              gpu_sim::Context::pool_class_bytes(sh.nnz * sizeof(T))));
    return worst;
  }

  sparse::ShardPlan make_plan() const {
    std::uint64_t budget = 0;
    for (gpu_sim::Context* ctx : placement_) {
      const std::uint64_t b = ctx->properties().total_global_memory;
      budget = budget == 0 ? b : std::min(budget, b);
    }
    std::size_t count = sparse::choose_shard_count(
        device_bytes_estimate(), placement_.size(), budget);
    sparse::ShardPlan plan = sparse::plan_shards(
        row_ptr_.data(), static_cast<std::size_t>(nrows_), count);
    // The naive count divides raw bytes by the whole arena, but a slice is
    // charged its class-rounded footprint, and the home context must hold
    // the op working set (output T̃, halo staging, algorithm vectors) NEXT
    // TO its own slice. Widen the fan-out until the largest rounded slice
    // fits half its device, so every context keeps working-set headroom.
    // A GBTL_SHARDS pin stays verbatim, as everywhere else.
    if (sparse::shard_count_override() == 0 && budget > 0) {
      while (count < placement_.size() &&
             max_shard_class_bytes(plan) > budget / 2)
        plan = sparse::plan_shards(row_ptr_.data(),
                                   static_cast<std::size_t>(nrows_), ++count);
    }
    sparse::annotate_col_spans(plan, row_ptr_.data(), cols_.data());
    return plan;
  }

  void build_shards() const {
    const sparse::ShardPlan plan = make_plan();
    std::vector<ShardView> built;
    built.reserve(plan.count());
    for (std::size_t s = 0; s < plan.count(); ++s) {
      ShardView sv;
      sv.meta = plan.shards[s];
      sv.ctx = placement_[s % placement_.size()];
      if (sv.meta.rows() > 0) {
        gpu_sim::ScopedDevice bind(*sv.ctx);
        const IndexType r0 = sv.meta.row_begin;
        const IndexType r1 = sv.meta.row_end;
        const IndexType k0 = row_ptr_[r0];
        const IndexType k1 = row_ptr_[r1];
        IndexArrayType local_ptr(r1 - r0 + 1);
        for (IndexType i = r0; i <= r1; ++i)
          local_ptr[i - r0] = row_ptr_[i] - k0;
        Matrix<T> m(r1 - r0, ncols_, *sv.ctx);
        m.adopt(gpu_sim::device_vector<IndexType>(local_ptr, *sv.ctx),
                gpu_sim::device_vector<IndexType>(
                    IndexArrayType(cols_.begin() + k0, cols_.begin() + k1),
                    *sv.ctx),
                gpu_sim::device_vector<T>(
                    std::vector<T>(vals_.begin() + k0, vals_.begin() + k1),
                    *sv.ctx));
        sv.mat.emplace(std::move(m));
      }
      built.push_back(std::move(sv));
    }
    shards_ = std::move(built);
  }

  Matrix<T>& ensure_home() const {
    if (!home_view_) {
      gpu_sim::ScopedDevice bind(*home_ctx_);
      Matrix<T> m(nrows_, ncols_, *home_ctx_);
      m.adopt(gpu_sim::device_vector<IndexType>(row_ptr_, *home_ctx_),
              gpu_sim::device_vector<IndexType>(cols_, *home_ctx_),
              gpu_sim::device_vector<T>(vals_, *home_ctx_));
      home_view_.emplace(std::move(m));
    }
    return *home_view_;
  }

  void bounds_check(IndexType i, IndexType j) const {
    if (i >= nrows_ || j >= ncols_)
      throw IndexOutOfBoundsException("matrix element access");
  }

  IndexType find_position(IndexType i, IndexType j) const {
    const auto lo = cols_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i]);
    const auto hi =
        cols_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i + 1]);
    const auto it = std::lower_bound(lo, hi, j);
    if (it != hi && *it == j)
      return static_cast<IndexType>(it - cols_.begin());
    return kNotFound;
  }

  IndexType nrows_ = 0;
  IndexType ncols_ = 0;
  gpu_sim::Context* home_ctx_ = nullptr;
  std::vector<gpu_sim::Context*> placement_;

  // Canonical host CSR.
  IndexArrayType row_ptr_;
  IndexArrayType cols_;
  std::vector<T> vals_;

  // Lazy device projections (see file comment).
  mutable std::vector<ShardView> shards_;
  mutable std::optional<Matrix<T>> home_view_;
};

}  // namespace grb::gpu_backend
