#pragma once

/// @file context.hpp
/// The simulated device: memory arena, launch engine, transfer engine, and
/// simulated clock. Plays the role of the CUDA runtime + one device.
///
/// Concurrency model: kernel launches are synchronous from the host's point
/// of view (they execute functionally before returning) but the *simulated*
/// clock advances by the modeled duration, so benches report device time the
/// way `cudaEventElapsedTime` would. Streams serialize on the single
/// simulated device clock — overlap of independent streams is conservatively
/// not modeled (GBTL's backend uses a single stream anyway).

#include <cstddef>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "gpu_sim/device_properties.hpp"
#include "gpu_sim/error.hpp"
#include "gpu_sim/stats.hpp"
#include "gpu_sim/thread_pool.hpp"

namespace gpu_sim {

/// CUDA-style 3-component launch geometry. Graph kernels in this code base
/// are one-dimensional; y/z exist for API fidelity.
struct Dim3 {
  std::size_t x = 1;
  std::size_t y = 1;
  std::size_t z = 1;

  constexpr Dim3() = default;
  constexpr Dim3(std::size_t x_, std::size_t y_ = 1, std::size_t z_ = 1)
      : x(x_), y(y_), z(z_) {}
  constexpr std::size_t count() const { return x * y * z; }
};

/// Per-thread coordinates handed to a simulated kernel body, mirroring
/// (blockIdx, threadIdx, gridDim, blockDim).
struct ThreadId {
  Dim3 block_idx;
  Dim3 thread_idx;
  Dim3 grid_dim;
  Dim3 block_dim;

  /// Flattened global 1-D index (the idiom `blockIdx.x*blockDim.x+threadIdx.x`).
  std::size_t global_x() const {
    return block_idx.x * block_dim.x + thread_idx.x;
  }
};

class Context {
 public:
  explicit Context(DeviceProperties props = DeviceProperties{},
                   std::size_t worker_count = 1);
  ~Context();

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  const DeviceProperties& properties() const { return props_; }
  /// Mutable access so tests/benches can recalibrate the cost model.
  DeviceProperties& mutable_properties() { return props_; }

  DeviceStats stats() const;
  void reset_stats();

  /// Current simulated device clock (seconds since context creation /
  /// last reset). Serial sum of all modeled durations — see makespan_s()
  /// for the multi-stream view.
  double simulated_time_s() const;

  // --- Streams (cudaStreamCreate analogue) --------------------------------
  // Each stream carries its own timeline: the absolute simulated second at
  // which its last enqueued operation finishes. Stream 0 (the default
  // compute stream) always exists. Kernels advance stream 0; the legacy
  // synchronous copy_* calls are device-wide barriers (cudaMemcpy
  // semantics) so single-stream programs keep makespan == serial sum
  // exactly; the *_async copies advance only their stream, which is where
  // overlap_seconds_hidden comes from.

  /// Create a stream; its timeline starts at the current makespan (a new
  /// stream cannot retroactively overlap work already accounted).
  std::size_t create_stream();
  /// Absolute end-of-timeline of stream @p sid.
  double stream_clock_s(std::size_t sid) const;
  /// Device-wide completion time: max over all stream timelines.
  double makespan_s() const;
  /// Make stream @p sid wait until absolute simulated time @p t_s — the
  /// cudaStreamWaitEvent edge (Event::time_s() supplies t_s).
  void stream_wait(std::size_t sid, double t_s);
  /// Barrier without cost: every timeline jumps to the makespan
  /// (cudaDeviceSynchronize for the cost model). Called at fusion-drain
  /// entry so a stale transfer-stream timeline can't fabricate overlap.
  void align_streams();
  /// The device's dedicated copy-engine stream, created lazily on first use
  /// (one persistent stream rather than one per drain, so long-running
  /// processes don't grow the timeline table without bound). The fusion
  /// planner stages index uploads here to overlap PCIe with kernel time.
  std::size_t transfer_stream();

  // --- Memory management (cudaMalloc / cudaFree analogue) ---------------
  void* malloc_bytes(std::size_t bytes);
  void free_bytes(void* ptr);
  /// Size of the allocation that starts at @p ptr; throws if unknown.
  std::size_t allocation_size(const void* ptr) const;

  // --- Size-class memory pool (cudaMallocAsync / caching allocator) ------
  /// Allocate through the pool: the request is rounded up to a power-of-two
  /// size class (min kMinPoolClassBytes) and served from that class's
  /// freelist when possible. Reuse is ordered with respect to kernel work
  /// because the simulated device is single-stream and launches complete
  /// before returning — a freed block can never be recycled under a kernel
  /// still reading it, the guarantee stream-ordered allocators provide on
  /// real hardware.
  void* pool_alloc(std::size_t bytes);
  /// Return a pool allocation to its class freelist (the bytes stay
  /// allocated from the device heap, counted in pool_bytes_held).
  void pool_free(void* ptr);
  /// Release every cached freelist block back to the device heap
  /// (cudaMemPoolTrimTo(0)). Also runs automatically when an allocation
  /// would exceed device memory only because of cached blocks.
  void trim();

  /// Smallest pool size class, in bytes.
  static constexpr std::size_t kMinPoolClassBytes = 64;
  /// The power-of-two size class serving a request of @p bytes.
  static std::size_t pool_class_bytes(std::size_t bytes);

  // --- Transfers (cudaMemcpy analogue) -----------------------------------
  // The synchronous forms are device-wide barriers on the stream timelines;
  // the async forms advance only @p stream_id (cudaMemcpyAsync on a
  // non-default stream). Functionally all four copy immediately — only the
  // cost-model timelines differ.
  void copy_h2d(void* dst_device, const void* src_host, std::size_t bytes);
  void copy_d2h(void* dst_host, const void* src_device, std::size_t bytes);
  void copy_d2d(void* dst_device, const void* src_device, std::size_t bytes);
  void copy_h2d_async(void* dst_device, const void* src_host,
                      std::size_t bytes, std::size_t stream_id);
  void copy_d2h_async(void* dst_host, const void* src_device,
                      std::size_t bytes, std::size_t stream_id);

  // --- Kernel launch ------------------------------------------------------
  /// Launch `kernel(ThreadId)` over a grid x block geometry. @p stats
  /// declares the useful work for the cost model. Blocks are distributed
  /// over the worker pool; threads within a block run sequentially (no
  /// __syncthreads is provided — GBTL kernels are block-synchronization
  /// free by construction).
  template <typename Kernel>
  void launch(Dim3 grid, Dim3 block, const LaunchStats& stats,
              Kernel&& kernel) {
    validate_launch(grid, block);
    const std::function<void(std::size_t)> run_block =
        [&](std::size_t linear_block) {
          ThreadId tid;
          tid.grid_dim = grid;
          tid.block_dim = block;
          tid.block_idx = Dim3{linear_block % grid.x,
                               (linear_block / grid.x) % grid.y,
                               linear_block / (grid.x * grid.y)};
          for (std::size_t tz = 0; tz < block.z; ++tz)
            for (std::size_t ty = 0; ty < block.y; ++ty)
              for (std::size_t tx = 0; tx < block.x; ++tx) {
                tid.thread_idx = Dim3{tx, ty, tz};
                kernel(tid);
              }
        };
    pool_.parallel_for(grid.count(), run_block);
    account_launch(stats);
  }

  /// Convenience 1-D launch: runs `body(i)` for i in [0, n) with the
  /// device's preferred block size. n == 0 still costs a launch (as a real
  /// early-exit kernel would) unless skip_if_empty.
  template <typename Body>
  void launch_n(std::size_t n, const LaunchStats& stats, Body&& body) {
    const std::size_t block = 256;
    const std::size_t grid = (n + block - 1) / block;
    if (n == 0) {
      account_launch(stats);
      return;
    }
    launch(Dim3{grid}, Dim3{block}, stats, [&](const ThreadId& tid) {
      const std::size_t i = tid.global_x();
      if (i < n) body(i);
    });
  }

  /// Account a kernel that was executed by library code (e.g. a simulated
  /// radix sort running through std::sort) rather than element-wise through
  /// launch(). Advances the clock exactly as launch() would.
  void account_kernel(const LaunchStats& stats) { account_launch(stats); }

  /// Record one adaptive-SpMV dispatch decision (sparse/spmv_select.hpp):
  /// which kernel variant ran and how many bytes of traffic the choice
  /// avoided relative to the row-parallel CSR baseline. Pure bookkeeping —
  /// does not advance the clock.
  void note_spmv_selection(SpmvKernelKind kind,
                           std::uint64_t bytes_saved_vs_baseline);

  /// Record one push/pull direction decision of the traversal engine
  /// (backend_gpu/ops.hpp). Pure bookkeeping — does not advance the clock.
  void note_direction_selection(TraversalDirection direction);

  /// Record one sparse-frontier compaction actually materialized by
  /// backend_gpu::Vector (cache misses only, not cache hits).
  void note_frontier_compaction();

  /// Record rows the pull kernel abandoned early on an annihilator hit.
  void note_pull_early_exit_rows(std::uint64_t rows);

  /// Record one presence-bitmap recount the nvals cache could not serve.
  void note_nvals_recount();

  /// Record one adaptive-SpGEMM dispatch decision (sparse/spgemm_select.hpp):
  /// which strategy served the mxm call. Pure bookkeeping — does not advance
  /// the clock.
  void note_spgemm_selection(SpgemmStrategy strategy);

  /// Record one hash-SpGEMM numeric pass: probe-chain collisions suffered
  /// and table storage carved for it. Pure bookkeeping.
  void note_spgemm_hash(std::uint64_t collisions,
                        std::uint64_t table_bytes);

  /// Record partial products a mask-seeded hash table refused to insert
  /// (the masked early exit, quantified). Pure bookkeeping.
  void note_spgemm_masked_products_avoided(std::uint64_t products);

  /// Record one multi-op group the fusion planner charged as a single
  /// composite launch. Pure bookkeeping — the per-launch overhead elision
  /// itself happens in account_launch under a FusedLaunchScope.
  void note_fused_group();

  /// Record one sharded mxv/vxm coordinated from this (home) context
  /// (backend_gpu/sharded_ops.hpp): the shard fan-out (kept as a high-water
  /// mark in DeviceStats::shards_active), total cross-device halo bytes
  /// moved, and the seconds of that exchange hidden under shard kernels.
  /// Pure bookkeeping — the modeled copy time itself is charged on each
  /// shard context's transfer stream.
  void note_halo_exchange(std::uint64_t shards, std::uint64_t bytes,
                          double seconds_hidden);

  /// Record one op the selectors routed onto the Bit-format word kernels
  /// (sparse/bitmap.hpp) and the 64-bit words that kernel actually touched.
  /// Pure bookkeeping — the word traffic itself is charged via
  /// account_kernel by the bit kernels.
  void note_bit_selection(std::uint64_t words_touched);

  /// Record one explicit CSR -> bitmap conversion (a cold bit-view
  /// orientation materialized). Pure bookkeeping — the conversion pipeline
  /// charges its own launches.
  void note_bit_conversion();

  /// Process-wide materialization hook installed by the lazy-fusion layer
  /// (sparse/fusion_plan.hpp): called before any host read of the clock or
  /// stats and on context destruction, so pending recorded ops execute
  /// before their effects are observed. gpu_sim itself stays independent of
  /// the fusion layer — it only owns this seam.
  using DrainHook = void (*)();
  static void set_drain_hook(DrainHook hook);

  ThreadPool& pool() { return pool_; }

 private:
  void validate_launch(const Dim3& grid, const Dim3& block) const;
  void account_launch(const LaunchStats& stats);
  void check_device_range(const void* ptr, std::size_t bytes,
                          const char* what) const;
  // Unlocked internals shared by the raw and pooled entry points (the pool
  // must allocate under the lock it already holds).
  void* malloc_locked(std::size_t bytes);
  void trim_locked();
  double makespan_locked() const;
  /// Refresh overlap_seconds_hidden = serial sum - makespan (monotone:
  /// every accounting step grows the serial sum at least as much as the
  /// makespan).
  void update_overlap_locked();
  static void run_drain_hook();

  DeviceProperties props_;
  ThreadPool pool_;

  mutable std::mutex mutex_;
  DeviceStats stats_;
  std::unordered_map<const void*, std::size_t> allocations_;
  /// Freelists of cached blocks, keyed by size class. Entries here are NOT
  /// in allocations_ (they have no client owner).
  std::unordered_map<std::size_t, std::vector<void*>> pool_free_lists_;
  /// Absolute end-of-timeline per stream; index 0 is the compute stream.
  std::vector<double> timeline_end_{0.0};
  /// Lazily-created dedicated copy stream id; 0 means "not created yet"
  /// (stream 0 is the compute stream, never the transfer stream).
  std::size_t transfer_stream_id_ = 0;
};

/// RAII scope under which this thread's kernel launches form one composite
/// ("fused") launch for the cost model: the first launch inside the scope is
/// charged in full, every further launch is charged its work time only —
/// the fixed kernel_launch_overhead_s is elided and counted in
/// DeviceStats::launches_elided. Functional execution is unchanged; only
/// the clock and the launch accounting differ. Thread-local by design so
/// concurrent service workers cannot bleed fusion scopes into each other.
class FusedLaunchScope {
 public:
  FusedLaunchScope();
  ~FusedLaunchScope();

  FusedLaunchScope(const FusedLaunchScope&) = delete;
  FusedLaunchScope& operator=(const FusedLaunchScope&) = delete;

 private:
  friend class Context;
  /// Innermost active scope of the calling thread, or nullptr.
  static FusedLaunchScope*& current();

  FusedLaunchScope* prev_;
  bool head_charged_ = false;
};

/// The calling thread's current device, analogous to CUDA's implicit
/// device 0 after cudaSetDevice. By default every thread sees one shared
/// process-wide context; a ScopedDevice guard rebinds the *calling thread*
/// to another context for a scope — the mechanism the serving layer uses to
/// give every worker thread its own simulated GPU (src/service/).
Context& device();

/// RAII guard that makes @p ctx the calling thread's device() for the
/// guard's lifetime (cudaSetDevice with automatic restore). Guards nest:
/// destruction restores whatever device() resolved to when the guard was
/// built. The rebinding is thread-local — concurrent threads each hold
/// their own binding and never observe another thread's guard.
///
/// Prefer a fresh Context + ScopedDevice over `device().reset_stats()` for
/// measuring a region: the region's stats start at zero, and nothing else
/// running in the process can bleed counters into the measurement.
class ScopedDevice {
 public:
  explicit ScopedDevice(Context& ctx);
  ~ScopedDevice();

  ScopedDevice(const ScopedDevice&) = delete;
  ScopedDevice& operator=(const ScopedDevice&) = delete;

 private:
  Context* previous_;
};

}  // namespace gpu_sim
