#pragma once

/// @file thread_pool.hpp
/// Minimal fixed-size worker pool used to execute simulated kernel blocks.
/// On a single-core host (this container) the pool degenerates to inline
/// execution; on multi-core hosts kernels genuinely run in parallel, which
/// keeps the execution model honest (kernels must be data-race free across
/// blocks, exactly as on a real GPU).

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gpu_sim {

class ThreadPool {
 public:
  /// @param worker_count number of worker threads; 0 or 1 means all work is
  ///        run inline on the calling thread.
  explicit ThreadPool(std::size_t worker_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Run `body(i)` for every i in [0, n), distributing contiguous chunks
  /// over the workers, and block until all complete. Exceptions thrown by
  /// the body are rethrown on the calling thread (first one wins).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

 private:
  struct Task {
    std::size_t begin = 0;
    std::size_t end = 0;
    const std::function<void(std::size_t)>* body = nullptr;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::vector<Task> pending_;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_error_;
  bool shutting_down_ = false;
};

}  // namespace gpu_sim
