#pragma once

/// @file stream.hpp
/// Streams and events over the simulated clock — the cudaStream_t /
/// cudaEvent_t analogue.
///
/// Simulated kernels execute functionally before launch() returns, so
/// `synchronize()` is a no-op for correctness — but each stream now carries
/// its own *timeline* in the cost model (Context::stream_clock_s). Stream 0
/// is the default compute stream every kernel advances; extra streams
/// (Stream::create) advance independently under the async copies, and
/// `Stream::wait(Event)` adds the cudaStreamWaitEvent dependency edge that
/// joins timelines. Event pairs still measure elapsed *simulated* time
/// exactly as cudaEventElapsedTime would measure elapsed device time.

#include <cstddef>

#include "gpu_sim/context.hpp"

namespace gpu_sim {

class Event;

class Stream {
 public:
  /// The default (compute) stream of @p ctx — id 0, the timeline every
  /// kernel launch advances.
  explicit Stream(Context& ctx = device()) : ctx_(&ctx), id_(0) {}

  /// Create a fresh stream (cudaStreamCreate): its timeline starts at the
  /// device's current makespan and advances only under work explicitly
  /// enqueued on it (the *_async copies).
  static Stream create(Context& ctx = device()) {
    return Stream(&ctx, ctx.create_stream());
  }

  Context& context() const { return *ctx_; }
  std::size_t id() const { return id_; }

  /// Absolute simulated second at which this stream's enqueued work ends.
  double clock_s() const { return ctx_->stream_clock_s(id_); }

  /// All simulated work is already complete when launch() returns; kept so
  /// backend code reads like real CUDA host code.
  void synchronize() const {}

  /// cudaStreamWaitEvent: this stream's next operation starts no earlier
  /// than the recorded event time. Defined after Event.
  inline void wait(const Event& event) const;

 private:
  Stream(Context* ctx, std::size_t id) : ctx_(ctx), id_(id) {}

  Context* ctx_;
  std::size_t id_;
};

class Event {
 public:
  explicit Event(Context& ctx = device()) : ctx_(&ctx) {}

  /// Capture the end of @p stream's current timeline.
  void record(const Stream& stream) {
    ctx_ = &stream.context();
    time_s_ = ctx_->stream_clock_s(stream.id());
  }
  /// Capture the calling thread's *current* device clock. Re-binds to
  /// device() first: a default-constructed Event recorded after a
  /// ScopedDevice switch must read the clock the thread is bound to now,
  /// not the one it was bound to at construction.
  void record() {
    ctx_ = &device();
    time_s_ = ctx_->simulated_time_s();
  }

  double time_s() const { return time_s_; }

  /// Elapsed simulated seconds between two recorded events.
  friend double elapsed_s(const Event& start, const Event& stop) {
    return stop.time_s_ - start.time_s_;
  }

 private:
  Context* ctx_;
  double time_s_ = 0.0;
};

inline void Stream::wait(const Event& event) const {
  ctx_->stream_wait(id_, event.time_s());
}

/// RAII timer over a device region: captures the simulated clock and the
/// delta of kernel/transfer statistics.
class ScopedDeviceTimer {
 public:
  explicit ScopedDeviceTimer(Context& ctx = device())
      : ctx_(&ctx), start_stats_(ctx.stats()) {}

  double elapsed_simulated_s() const {
    return ctx_->simulated_time_s() -
           (start_stats_.simulated_kernel_time_s +
            start_stats_.simulated_transfer_time_s);
  }

  DeviceStats delta() const { return ctx_->stats() - start_stats_; }

 private:
  Context* ctx_;
  DeviceStats start_stats_;
};

}  // namespace gpu_sim
