#pragma once

/// @file stream.hpp
/// Streams and events over the simulated clock — the cudaStream_t /
/// cudaEvent_t analogue used by benches to time device regions.
///
/// Because simulated kernels execute synchronously, a Stream is a thin
/// handle over the context clock: `synchronize()` is a no-op for
/// correctness but kept for API fidelity, and Event pairs measure elapsed
/// *simulated* time exactly as cudaEventElapsedTime would measure elapsed
/// device time.

#include "gpu_sim/context.hpp"

namespace gpu_sim {

class Stream {
 public:
  explicit Stream(Context& ctx = device()) : ctx_(&ctx) {}

  Context& context() const { return *ctx_; }

  /// All simulated work is already complete when launch() returns; kept so
  /// backend code reads like real CUDA host code.
  void synchronize() const {}

 private:
  Context* ctx_;
};

class Event {
 public:
  explicit Event(Context& ctx = device()) : ctx_(&ctx) {}

  /// Capture the current simulated device clock.
  void record(const Stream& stream) {
    ctx_ = &stream.context();
    time_s_ = ctx_->simulated_time_s();
  }
  void record() { time_s_ = ctx_->simulated_time_s(); }

  double time_s() const { return time_s_; }

  /// Elapsed simulated seconds between two recorded events.
  friend double elapsed_s(const Event& start, const Event& stop) {
    return stop.time_s_ - start.time_s_;
  }

 private:
  Context* ctx_;
  double time_s_ = 0.0;
};

/// RAII timer over a device region: captures the simulated clock and the
/// delta of kernel/transfer statistics.
class ScopedDeviceTimer {
 public:
  explicit ScopedDeviceTimer(Context& ctx = device())
      : ctx_(&ctx), start_stats_(ctx.stats()) {}

  double elapsed_simulated_s() const {
    return ctx_->simulated_time_s() -
           (start_stats_.simulated_kernel_time_s +
            start_stats_.simulated_transfer_time_s);
  }

  DeviceStats delta() const { return ctx_->stats() - start_stats_; }

 private:
  Context* ctx_;
  DeviceStats start_stats_;
};

}  // namespace gpu_sim
