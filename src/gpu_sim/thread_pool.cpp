#include "gpu_sim/thread_pool.hpp"

#include <algorithm>

namespace gpu_sim {

ThreadPool::ThreadPool(std::size_t worker_count) {
  if (worker_count <= 1) return;  // inline mode
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Split into ~4 chunks per worker so imbalanced bodies still spread out.
  const std::size_t chunk_target = workers_.size() * 4;
  const std::size_t chunk = std::max<std::size_t>(1, n / chunk_target);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    first_error_ = nullptr;
    for (std::size_t begin = 0; begin < n; begin += chunk) {
      pending_.push_back(Task{begin, std::min(begin + chunk, n), &body});
      ++in_flight_;
    }
  }
  work_ready_.notify_all();

  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [this] { return shutting_down_ || !pending_.empty(); });
      if (pending_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = pending_.back();
      pending_.pop_back();
    }
    try {
      for (std::size_t i = task.begin; i < task.end; ++i) (*task.body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) work_done_.notify_all();
    }
  }
}

}  // namespace gpu_sim
