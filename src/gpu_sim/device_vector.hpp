#pragma once

/// @file device_vector.hpp
/// RAII owner of a typed device allocation — the thrust::device_vector
/// analogue. Element access from host code is deliberately not provided;
/// data moves via explicit, accounted transfers (`copy_from_host`,
/// `to_host`) or is touched inside kernels via `data()`.

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "gpu_sim/context.hpp"

namespace gpu_sim {

template <typename T>
class device_vector {
  static_assert(std::is_trivially_copyable_v<T>,
                "device memory only holds trivially copyable types");

 public:
  using value_type = T;

  device_vector() : device_vector(device()) {}
  explicit device_vector(Context& ctx) : ctx_(&ctx) {}

  explicit device_vector(std::size_t n, Context& ctx = device())
      : ctx_(&ctx), size_(n), capacity_(n) {
    // Allocations route through the context's size-class pool so the
    // transient vectors GraphBLAS ops churn through (frontiers, COO keys,
    // scratch flags) recycle device blocks instead of hitting the heap.
    if (n > 0) data_ = static_cast<T*>(ctx_->pool_alloc(n * sizeof(T)));
  }

  /// Construct by uploading host data (one accounted H2D transfer).
  explicit device_vector(const std::vector<T>& host, Context& ctx = device())
      : device_vector(host.size(), ctx) {
    upload_from(host);
  }

  device_vector(const device_vector& other)
      : device_vector(other.size_, *other.ctx_) {
    if (size_ > 0) ctx_->copy_d2d(data_, other.data_, bytes());
  }

  device_vector(device_vector&& other) noexcept
      : ctx_(other.ctx_),
        data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        capacity_(std::exchange(other.capacity_, 0)) {}

  device_vector& operator=(const device_vector& other) {
    if (this == &other) return *this;
    device_vector tmp(other);
    swap(tmp);
    return *this;
  }

  device_vector& operator=(device_vector&& other) noexcept {
    if (this == &other) return *this;
    release();
    ctx_ = other.ctx_;
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    capacity_ = std::exchange(other.capacity_, 0);
    return *this;
  }

  ~device_vector() { release(); }

  Context& context() const { return *ctx_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t bytes() const { return size_ * sizeof(T); }

  /// Device pointer. Host code must only dereference it inside kernel
  /// bodies (the simulation cannot enforce this, the convention can).
  T* data() { return data_; }
  const T* data() const { return data_; }

  /// Resize, preserving the prefix (device-to-device copy when growing past
  /// capacity, as cudaMalloc+cudaMemcpyD2D would).
  ///
  /// Strong exception guarantee: the new block is acquired *before* the old
  /// one is touched, so if the allocation throws (DeviceBadAlloc on a full
  /// card) the vector still owns its original buffer with its original
  /// contents — callers can catch, shrink something else, and retry.
  void resize(std::size_t n) {
    if (n <= capacity_) {
      size_ = n;
      return;
    }
    T* fresh = static_cast<T*>(ctx_->pool_alloc(n * sizeof(T)));
    if (size_ > 0) ctx_->copy_d2d(fresh, data_, bytes());
    if (data_ != nullptr) ctx_->pool_free(data_);
    data_ = fresh;
    size_ = n;
    capacity_ = n;
  }

  void clear() { size_ = 0; }

  /// Download to host (one accounted D2H transfer).
  std::vector<T> to_host() const {
    std::vector<T> out(size_);
    if (size_ == 0) return out;
    if constexpr (std::is_same_v<T, bool>) {
      // std::vector<bool> is bit-packed: stage through a flat buffer.
      std::vector<unsigned char> staging(size_);
      ctx_->copy_d2h(staging.data(), data_, bytes());
      for (std::size_t i = 0; i < size_; ++i) out[i] = staging[i] != 0;
    } else {
      ctx_->copy_d2h(out.data(), data_, bytes());
    }
    return out;
  }

  /// Upload from host, resizing as needed (one accounted H2D transfer).
  void copy_from_host(const std::vector<T>& host) {
    resize(host.size());
    upload_from(host);
  }

  void swap(device_vector& other) noexcept {
    std::swap(ctx_, other.ctx_);
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
    std::swap(capacity_, other.capacity_);
  }

 private:
  void upload_from(const std::vector<T>& host) {
    if (host.empty()) return;
    if constexpr (std::is_same_v<T, bool>) {
      std::vector<unsigned char> staging(host.size());
      for (std::size_t i = 0; i < host.size(); ++i) staging[i] = host[i];
      ctx_->copy_h2d(data_, staging.data(), bytes());
    } else {
      ctx_->copy_h2d(data_, host.data(), bytes());
    }
  }

  void release() noexcept {
    if (data_ != nullptr) {
      // pool_free only throws for foreign pointers, which cannot happen
      // for a pointer we allocated; terminate would be correct if it did.
      ctx_->pool_free(data_);
      data_ = nullptr;
    }
    size_ = 0;
    capacity_ = 0;
  }

  Context* ctx_ = nullptr;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace gpu_sim
