#pragma once

/// @file error.hpp
/// Error types for the simulated device runtime. Mirrors the role of
/// cudaError_t checks in real CUDA host code, but as C++ exceptions: every
/// misuse of the device API (out-of-bounds copy, bad launch configuration,
/// double free, allocation failure) throws a typed exception instead of
/// returning a status code.

#include <stdexcept>
#include <string>

namespace gpu_sim {

/// Base class for every error raised by the simulated device runtime.
class DeviceError : public std::runtime_error {
 public:
  explicit DeviceError(const std::string& what_arg)
      : std::runtime_error("gpu_sim: " + what_arg) {}
};

/// Device memory exhausted (the arena enforces a configurable capacity so
/// out-of-memory behaviour of a real card can be tested).
class DeviceBadAlloc : public DeviceError {
 public:
  explicit DeviceBadAlloc(const std::string& what_arg)
      : DeviceError("device out of memory: " + what_arg) {}
};

/// A pointer passed to free/copy was not obtained from the device arena,
/// or a copy range exceeds the underlying allocation.
class InvalidDevicePointer : public DeviceError {
 public:
  explicit InvalidDevicePointer(const std::string& what_arg)
      : DeviceError("invalid device pointer: " + what_arg) {}
};

/// Invalid kernel launch configuration (zero-sized block, block larger than
/// the device limit, grid larger than the device limit).
class InvalidLaunchConfig : public DeviceError {
 public:
  explicit InvalidLaunchConfig(const std::string& what_arg)
      : DeviceError("invalid launch configuration: " + what_arg) {}
};

}  // namespace gpu_sim
