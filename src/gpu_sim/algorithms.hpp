#pragma once

/// @file algorithms.hpp
/// Thrust-style device primitive library on top of the simulated launch
/// API. The GBTL-CUDA backend composes its GraphBLAS operations from these
/// primitives exactly the way the paper's CUDA backend composed Thrust/CUSP
/// calls. Each primitive both executes functionally and charges the cost
/// model with a realistic pass structure (a scan is two passes, a radix
/// sort is four key passes plus payload movement, ...).

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "gpu_sim/context.hpp"
#include "gpu_sim/device_vector.hpp"

namespace gpu_sim {

// ---------------------------------------------------------------------------
// Elementwise primitives
// ---------------------------------------------------------------------------

template <typename T>
void fill(device_vector<T>& v, const T& value) {
  Context& ctx = v.context();
  T* d = v.data();
  ctx.launch_n(v.size(), LaunchStats{v.size(), 0, v.size() * sizeof(T)},
               [=](std::size_t i) { d[i] = value; });
}

/// v[i] = start + i
template <typename T>
void sequence(device_vector<T>& v, T start = T{0}) {
  Context& ctx = v.context();
  T* d = v.data();
  ctx.launch_n(v.size(), LaunchStats{v.size(), 0, v.size() * sizeof(T)},
               [=](std::size_t i) { d[i] = start + static_cast<T>(i); });
}

/// out[i] = f(in[i])
template <typename TIn, typename TOut, typename UnaryOp>
void transform(const device_vector<TIn>& in, device_vector<TOut>& out,
               UnaryOp f) {
  Context& ctx = in.context();
  out.resize(in.size());
  const TIn* s = in.data();
  TOut* d = out.data();
  ctx.launch_n(in.size(),
               LaunchStats{in.size(), in.size() * sizeof(TIn),
                           in.size() * sizeof(TOut)},
               [=](std::size_t i) { d[i] = f(s[i]); });
}

/// out[i] = f(a[i], b[i])
template <typename TA, typename TB, typename TOut, typename BinaryOp>
void transform(const device_vector<TA>& a, const device_vector<TB>& b,
               device_vector<TOut>& out, BinaryOp f) {
  Context& ctx = a.context();
  out.resize(a.size());
  const TA* pa = a.data();
  const TB* pb = b.data();
  TOut* d = out.data();
  ctx.launch_n(a.size(),
               LaunchStats{a.size(),
                           a.size() * (sizeof(TA) + sizeof(TB)),
                           a.size() * sizeof(TOut)},
               [=](std::size_t i) { d[i] = f(pa[i], pb[i]); });
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

/// Tree reduction; result lands on the host (thrust::reduce semantics, which
/// implicitly costs a scalar D2H inside the primitive — modeled as part of
/// the kernel's launch overhead).
template <typename T, typename BinaryOp>
T reduce(const device_vector<T>& v, T init, BinaryOp op) {
  Context& ctx = v.context();
  const T* d = v.data();
  T acc = init;
  // Functionally sequential; modeled as a two-level tree reduction: one
  // full read pass plus a negligible second stage.
  for (std::size_t i = 0; i < v.size(); ++i) acc = op(acc, d[i]);
  ctx.account_kernel(LaunchStats{v.size(), v.size() * sizeof(T), 64});
  ctx.account_kernel(LaunchStats{256, 256 * sizeof(T), sizeof(T)});
  return acc;
}

template <typename T>
T reduce_sum(const device_vector<T>& v) {
  return reduce(v, T{0}, [](T a, T b) { return a + b; });
}

/// Count of elements satisfying the predicate.
template <typename T, typename Pred>
std::size_t count_if(const device_vector<T>& v, Pred pred) {
  Context& ctx = v.context();
  const T* d = v.data();
  std::size_t n = 0;
  for (std::size_t i = 0; i < v.size(); ++i)
    if (pred(d[i])) ++n;
  ctx.account_kernel(LaunchStats{v.size(), v.size() * sizeof(T), 64});
  return n;
}

// ---------------------------------------------------------------------------
// Scans
// ---------------------------------------------------------------------------

/// Exclusive prefix sum; returns the grand total (handy for sizing output
/// buffers of stream compaction, the CUSP idiom).
template <typename T>
T exclusive_scan(const device_vector<T>& in, device_vector<T>& out,
                 T init = T{0}) {
  Context& ctx = in.context();
  out.resize(in.size());
  const T* s = in.data();
  T* d = out.data();
  T run = init;
  for (std::size_t i = 0; i < in.size(); ++i) {
    d[i] = run;
    run = run + s[i];
  }
  // Work-efficient scan: up-sweep + down-sweep = 2 passes.
  const std::uint64_t traffic = 2ull * in.size() * sizeof(T);
  ctx.account_kernel(LaunchStats{in.size(), traffic, traffic});
  return run;
}

template <typename T>
void inclusive_scan(const device_vector<T>& in, device_vector<T>& out) {
  Context& ctx = in.context();
  out.resize(in.size());
  const T* s = in.data();
  T* d = out.data();
  T run{};
  for (std::size_t i = 0; i < in.size(); ++i) {
    run = (i == 0) ? s[0] : run + s[i];
    d[i] = run;
  }
  const std::uint64_t traffic = 2ull * in.size() * sizeof(T);
  ctx.account_kernel(LaunchStats{in.size(), traffic, traffic});
}

// ---------------------------------------------------------------------------
// Gather / scatter / compaction
// ---------------------------------------------------------------------------

/// out[i] = in[map[i]]
template <typename T, typename I>
void gather(const device_vector<I>& map, const device_vector<T>& in,
            device_vector<T>& out) {
  Context& ctx = map.context();
  out.resize(map.size());
  const I* m = map.data();
  const T* s = in.data();
  T* d = out.data();
  ctx.launch_n(map.size(),
               LaunchStats{map.size(),
                           map.size() * (sizeof(I) + sizeof(T)),
                           map.size() * sizeof(T)},
               [=](std::size_t i) { d[i] = s[m[i]]; });
}

/// out[map[i]] = in[i]
template <typename T, typename I>
void scatter(const device_vector<T>& in, const device_vector<I>& map,
             device_vector<T>& out) {
  Context& ctx = map.context();
  const T* s = in.data();
  const I* m = map.data();
  T* d = out.data();
  ctx.launch_n(in.size(),
               LaunchStats{in.size(),
                           in.size() * (sizeof(I) + sizeof(T)),
                           in.size() * sizeof(T)},
               [=](std::size_t i) { d[m[i]] = s[i]; });
}

/// Stream compaction: copy in[i] to the output where flags[i] != 0,
/// preserving order. Returns the number of elements kept. Modeled as
/// scan + scatter (two launches), the canonical CUDA formulation.
template <typename T, typename F>
std::size_t copy_flagged(const device_vector<T>& in,
                         const device_vector<F>& flags,
                         device_vector<T>& out) {
  Context& ctx = in.context();
  const T* s = in.data();
  const F* f = flags.data();
  std::size_t kept = 0;
  std::vector<T> tmp;
  tmp.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i)
    if (f[i] != F{0}) tmp.push_back(s[i]);
  kept = tmp.size();
  out.resize(kept);
  if (kept > 0) std::copy(tmp.begin(), tmp.end(), out.data());
  const std::uint64_t scan_traffic = 2ull * in.size() * sizeof(F);
  ctx.account_kernel(LaunchStats{in.size(), scan_traffic, scan_traffic});
  ctx.account_kernel(LaunchStats{in.size(),
                                 in.size() * (sizeof(T) + sizeof(F)),
                                 kept * sizeof(T)});
  return kept;
}

/// Stream compaction of set positions: write the indices i where
/// flags[i] != 0 to @p out in ascending order. Returns the number kept.
/// This is the dense-bitmap -> sparse-frontier conversion of the
/// direction-optimizing traversal engine; modeled as scan + scatter, the
/// same two-launch shape as copy_flagged.
template <typename F, typename I>
std::size_t flagged_indices(const device_vector<F>& flags,
                            device_vector<I>& out) {
  Context& ctx = flags.context();
  const F* f = flags.data();
  std::vector<I> tmp;
  for (std::size_t i = 0; i < flags.size(); ++i)
    if (f[i] != F{0}) tmp.push_back(static_cast<I>(i));
  const std::size_t kept = tmp.size();
  out.resize(kept);
  if (kept > 0) std::copy(tmp.begin(), tmp.end(), out.data());
  const std::uint64_t scan_traffic = 2ull * flags.size() * sizeof(F);
  ctx.account_kernel(LaunchStats{flags.size(), scan_traffic, scan_traffic});
  ctx.account_kernel(LaunchStats{flags.size(), flags.size() * sizeof(F),
                                 kept * sizeof(I)});
  return kept;
}

// ---------------------------------------------------------------------------
// Sorting and segmented operations
// ---------------------------------------------------------------------------

/// Stable argsort of @p keys: fills @p perm with indices such that
/// keys[perm[]] is nondecreasing. Modeled as a 4-pass LSB radix sort over
/// 32-bit keys carrying a 4-byte payload.
template <typename K, typename I>
void stable_argsort(const device_vector<K>& keys, device_vector<I>& perm) {
  Context& ctx = keys.context();
  perm.resize(keys.size());
  const K* k = keys.data();
  I* p = perm.data();
  std::iota(p, p + keys.size(), I{0});
  std::stable_sort(p, p + keys.size(),
                   [k](I a, I b) { return k[a] < k[b]; });
  const std::uint64_t pass = keys.size() * (sizeof(K) + sizeof(I));
  ctx.account_kernel(LaunchStats{4ull * keys.size(), 4ull * pass, 4ull * pass});
}

/// In-place stable sort_by_key of (keys, values) — the thrust workhorse for
/// building sparse structures. Same radix cost model as stable_argsort.
template <typename K, typename V>
void sort_by_key(device_vector<K>& keys, device_vector<V>& values) {
  Context& ctx = keys.context();
  device_vector<std::uint64_t> perm(ctx);
  stable_argsort(keys, perm);
  device_vector<K> sorted_keys(ctx);
  device_vector<V> sorted_vals(ctx);
  gather(perm, keys, sorted_keys);
  gather(perm, values, sorted_vals);
  keys = std::move(sorted_keys);
  values = std::move(sorted_vals);
}

/// reduce_by_key over a sorted key sequence: collapses runs of equal keys,
/// combining values with @p op. Returns the number of distinct runs.
template <typename K, typename V, typename BinaryOp>
std::size_t reduce_by_key(const device_vector<K>& keys,
                          const device_vector<V>& values,
                          device_vector<K>& out_keys,
                          device_vector<V>& out_values, BinaryOp op) {
  Context& ctx = keys.context();
  const K* k = keys.data();
  const V* v = values.data();
  std::vector<K> rk;
  std::vector<V> rv;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (!rk.empty() && rk.back() == k[i]) {
      rv.back() = op(rv.back(), v[i]);
    } else {
      rk.push_back(k[i]);
      rv.push_back(v[i]);
    }
  }
  out_keys.resize(rk.size());
  out_values.resize(rv.size());
  if (!rk.empty()) {
    std::copy(rk.begin(), rk.end(), out_keys.data());
    std::copy(rv.begin(), rv.end(), out_values.data());
  }
  const std::uint64_t read = keys.size() * (sizeof(K) + sizeof(V));
  const std::uint64_t written = rk.size() * (sizeof(K) + sizeof(V));
  ctx.account_kernel(LaunchStats{keys.size(), read, written});
  return rk.size();
}

/// Deduplicate a sorted sequence in place (thrust::unique). Returns the
/// number of distinct elements. Modeled as flag + scan + scatter.
template <typename T>
std::size_t unique(device_vector<T>& v) {
  Context& ctx = v.context();
  T* d = v.data();
  std::size_t out = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (out == 0 || !(d[out - 1] == d[i])) d[out++] = d[i];
  }
  const std::uint64_t traffic = 3ull * v.size() * sizeof(T);
  ctx.account_kernel(LaunchStats{v.size(), traffic, traffic});
  ctx.account_kernel(LaunchStats{v.size(), 2 * v.size(), 2 * v.size()});
  v.resize(out);
  return out;
}

/// out[0] = in[0]; out[i] = in[i] - in[i-1] (thrust::adjacent_difference).
/// The inverse of inclusive_scan; used to recover per-row counts from CSR
/// offsets.
template <typename T>
void adjacent_difference(const device_vector<T>& in, device_vector<T>& out) {
  Context& ctx = in.context();
  out.resize(in.size());
  const T* s = in.data();
  T* d = out.data();
  ctx.launch_n(in.size(),
               LaunchStats{in.size(), 2 * in.size() * sizeof(T),
                           in.size() * sizeof(T)},
               [=](std::size_t i) {
                 d[i] = (i == 0) ? s[0] : s[i] - s[i - 1];
               });
}

/// Vectorized binary search: for each needle, index of the first element of
/// the sorted haystack that is >= needle (thrust::lower_bound). Used to
/// build CSR row offsets from sorted COO row indices.
template <typename T, typename I>
void lower_bound(const device_vector<T>& sorted_haystack,
                 const device_vector<T>& needles, device_vector<I>& out) {
  Context& ctx = needles.context();
  out.resize(needles.size());
  const T* h = sorted_haystack.data();
  const T* n = needles.data();
  const std::size_t hn = sorted_haystack.size();
  I* d = out.data();
  std::uint64_t log_n = 1;
  while ((1ull << log_n) < std::max<std::size_t>(hn, 2)) ++log_n;
  ctx.launch_n(needles.size(),
               LaunchStats{needles.size() * log_n,
                           needles.size() * log_n * sizeof(T),
                           needles.size() * sizeof(I)},
               [=](std::size_t i) {
                 d[i] = static_cast<I>(std::lower_bound(h, h + hn, n[i]) - h);
               });
}

}  // namespace gpu_sim
