#pragma once

/// @file device_properties.hpp
/// Analytic performance model of the simulated device.
///
/// The GBTL-CUDA paper evaluated on real NVIDIA hardware; this container has
/// none, so the GPU backend runs its kernels functionally on the host while a
/// calibrated cost model advances a *simulated device clock*. The model is a
/// roofline-style LogP hybrid: each kernel launch costs a fixed overhead plus
/// max(compute-bound time, memory-bound time); each host<->device transfer
/// costs a fixed latency plus bytes/bandwidth. The default parameters are
/// modeled on a Kepler-class Tesla K40 (the kind of card a 2016 GABB paper
/// used). Substituting real silicon with this model preserves the *shape* of
/// the paper's results: crossover points between the sequential CPU backend
/// and the GPU backend, and the relative benefit of staying device-resident.

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace gpu_sim {

/// Static properties + cost-model coefficients of the simulated device.
/// All rates are per second; all times are in seconds.
struct DeviceProperties {
  const char* name = "SimuTesla K40 (software model)";

  // --- Geometry (mirrors cudaDeviceProp) -------------------------------
  std::uint32_t multiprocessor_count = 15;
  std::uint32_t max_threads_per_block = 1024;
  std::uint32_t warp_size = 32;
  std::uint64_t max_grid_dim_x = 2147483647ull;  // 2^31 - 1 blocks
  std::size_t total_global_memory = 12ull << 30;  // 12 GiB

  // --- Cost model -------------------------------------------------------
  /// Fixed time to get any kernel onto the device (driver + queueing).
  double kernel_launch_overhead_s = 6.0e-6;
  /// Aggregate arithmetic throughput for the simple (non-FMA-dense) integer
  /// and floating point work graph kernels do. ~1/3 of peak K40 SP FLOPs.
  double compute_throughput_ops_per_s = 1.4e12;
  /// Achievable global-memory bandwidth (~80% of the 288 GB/s peak).
  double memory_bandwidth_bytes_per_s = 230.0e9;
  /// PCIe 3.0 x16 effective transfer bandwidth.
  double transfer_bandwidth_bytes_per_s = 8.0e9;
  /// Per-transfer fixed latency (driver + DMA setup).
  double transfer_latency_s = 10.0e-6;
  /// Device-to-device copies run at full memory bandwidth, read+write.
  double d2d_bandwidth_bytes_per_s = 115.0e9;
};

/// Work/traffic declaration accompanying a kernel launch. Backend kernels
/// declare how much useful work they do; the clock advances by the modeled
/// duration. (Real CUDA profiling would *measure* these; here the kernels
/// are instrumented by construction.)
struct LaunchStats {
  /// Number of scalar operations performed (additions, comparisons, ...).
  std::uint64_t ops = 0;
  /// Bytes read from simulated global memory.
  std::uint64_t bytes_read = 0;
  /// Bytes written to simulated global memory.
  std::uint64_t bytes_written = 0;

  friend LaunchStats operator+(LaunchStats a, const LaunchStats& b) {
    a.ops += b.ops;
    a.bytes_read += b.bytes_read;
    a.bytes_written += b.bytes_written;
    return a;
  }
};

/// Modeled execution time of one kernel launch under properties @p p.
inline double modeled_kernel_time(const DeviceProperties& p,
                                  const LaunchStats& s) {
  const double compute =
      static_cast<double>(s.ops) / p.compute_throughput_ops_per_s;
  const double memory =
      static_cast<double>(s.bytes_read + s.bytes_written) /
      p.memory_bandwidth_bytes_per_s;
  return p.kernel_launch_overhead_s + (compute > memory ? compute : memory);
}

/// Modeled time of a host<->device transfer of @p bytes.
inline double modeled_transfer_time(const DeviceProperties& p,
                                    std::size_t bytes) {
  return p.transfer_latency_s +
         static_cast<double>(bytes) / p.transfer_bandwidth_bytes_per_s;
}

/// Warp-granular padding model of a row-parallel (thread-per-row) kernel.
///
/// Under SIMT lockstep a warp of `warp_size` consecutive rows retires only
/// when its heaviest row finishes; the lighter lanes idle but keep occupying
/// issue slots and the memory pipeline, so the warp's effective item count is
/// warp_size * max(items in warp) — ELL padding arithmetic applied per warp
/// instead of per matrix. Row-parallel kernels declare ops/traffic in these
/// effective slots; load-balanced (merge-path) kernels declare the flat item
/// count, which is their entire point. `items_of_row(i)` returns the work
/// items (e.g. nnz) of row i.
template <typename ItemsOfRowFn>
std::uint64_t warp_padded_items(std::size_t nrows, std::uint32_t warp_size,
                                ItemsOfRowFn&& items_of_row) {
  if (warp_size == 0) warp_size = 1;
  std::uint64_t total = 0;
  for (std::size_t base = 0; base < nrows; base += warp_size) {
    const std::size_t end = std::min<std::size_t>(base + warp_size, nrows);
    std::uint64_t warp_max = 0;
    for (std::size_t i = base; i < end; ++i)
      warp_max = std::max<std::uint64_t>(warp_max, items_of_row(i));
    // A tail warp still schedules warp_size lanes; idle lanes are masked.
    total += warp_max * warp_size;
  }
  return total;
}

/// Modeled time of a device-to-device copy of @p bytes.
inline double modeled_d2d_time(const DeviceProperties& p, std::size_t bytes) {
  return p.kernel_launch_overhead_s +
         static_cast<double>(bytes) / p.d2d_bandwidth_bytes_per_s;
}

}  // namespace gpu_sim
