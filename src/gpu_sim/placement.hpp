#pragma once

/// @file placement.hpp
/// A *placement* is the ordered set of simulated devices the calling thread
/// may spread a sharded graph over. It generalizes the thread-local
/// ScopedDevice binding: device() names the thread's *home* context (where
/// vectors and op outputs live), while the placement lists every context a
/// ShardedMatrix may pin row-block shards to. Shard s of an N-shard plan
/// runs on placement()[s % placement().size()], so a 4-shard plan over a
/// 2-context placement round-robins — and a forced multi-shard test on a
/// single context still exercises the full halo-exchange path.
///
/// Like ScopedDevice, the binding is thread-local by design: concurrent
/// service workers each install their own placement and never observe
/// another worker's contexts.

#include <cstddef>
#include <vector>

#include "gpu_sim/context.hpp"

namespace gpu_sim {

namespace detail {
inline std::vector<Context*>& placement_slot() {
  thread_local std::vector<Context*> slot;
  return slot;
}
}  // namespace detail

/// The calling thread's current placement. Empty when no ScopedPlacement is
/// active — callers that need a usable device list should go through
/// placement_or_default().
inline const std::vector<Context*>& placement() {
  return detail::placement_slot();
}

/// The placement to actually shard over: the installed one, or — when none
/// is active — the single-entry list {&device()}, so sharded code degrades
/// to the classic one-context world without a special case.
inline std::vector<Context*> placement_or_default() {
  const auto& p = detail::placement_slot();
  if (!p.empty()) return p;
  return {&device()};
}

/// RAII guard installing @p contexts as the calling thread's placement for
/// the guard's lifetime. Nests like ScopedDevice: destruction restores the
/// previous placement. The first context of the placement is conventionally
/// the thread's home device; installing a placement does NOT rebind
/// device() — pair with ScopedDevice for that.
class ScopedPlacement {
 public:
  explicit ScopedPlacement(std::vector<Context*> contexts)
      : previous_(std::move(detail::placement_slot())) {
    detail::placement_slot() = std::move(contexts);
  }
  ~ScopedPlacement() { detail::placement_slot() = std::move(previous_); }

  ScopedPlacement(const ScopedPlacement&) = delete;
  ScopedPlacement& operator=(const ScopedPlacement&) = delete;

 private:
  std::vector<Context*> previous_;
};

/// Drain every context of the calling thread's placement (plus the home
/// device): align all stream timelines so no shard context's transfer
/// stream can retroactively fabricate overlap across an algorithm
/// checkpoint. The multi-context analogue of the cudaDeviceSynchronize each
/// ExecutionPolicy::checkpoint() implies.
inline void sync_placement() {
  device().align_streams();
  for (Context* ctx : detail::placement_slot())
    if (ctx != nullptr && ctx != &device()) ctx->align_streams();
}

}  // namespace gpu_sim
