#include "gpu_sim/context.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>

namespace gpu_sim {

namespace {
/// Materialization hook installed by the lazy-fusion layer; atomic because
/// install races with concurrent clock reads from other threads.
std::atomic<Context::DrainHook> g_drain_hook{nullptr};
}  // namespace

void Context::set_drain_hook(DrainHook hook) {
  g_drain_hook.store(hook, std::memory_order_release);
}

void Context::run_drain_hook() {
  if (DrainHook hook = g_drain_hook.load(std::memory_order_acquire))
    hook();
}

Context::Context(DeviceProperties props, std::size_t worker_count)
    : props_(props), pool_(worker_count) {}

Context::~Context() {
  // Recorded-but-pending ops may still reference this device's memory;
  // drain them while the arena is alive.
  run_drain_hook();
  // Cached pool blocks have no client owner left to release them.
  std::lock_guard<std::mutex> lock(mutex_);
  trim_locked();
}

DeviceStats Context::stats() const {
  run_drain_hook();  // observing counters is a materialization point
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Context::reset_stats() {
  run_drain_hook();
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t in_use = stats_.bytes_in_use;
  const std::size_t held = stats_.pool_bytes_held;
  stats_ = DeviceStats{};
  stats_.bytes_in_use = in_use;  // live allocations survive a stats reset
  stats_.peak_bytes_in_use = in_use;
  stats_.pool_bytes_held = held;  // cached blocks do too
  std::fill(timeline_end_.begin(), timeline_end_.end(), 0.0);
}

double Context::simulated_time_s() const {
  run_drain_hook();  // observing the clock is a materialization point
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_.simulated_kernel_time_s + stats_.simulated_transfer_time_s;
}

double Context::makespan_locked() const {
  return *std::max_element(timeline_end_.begin(), timeline_end_.end());
}

void Context::update_overlap_locked() {
  stats_.overlap_seconds_hidden =
      (stats_.simulated_kernel_time_s + stats_.simulated_transfer_time_s) -
      makespan_locked();
}

std::size_t Context::create_stream() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Start at the makespan: a fresh stream cannot retroactively overlap
  // work that was accounted before it existed.
  timeline_end_.push_back(makespan_locked());
  return timeline_end_.size() - 1;
}

double Context::stream_clock_s(std::size_t sid) const {
  run_drain_hook();
  std::lock_guard<std::mutex> lock(mutex_);
  if (sid >= timeline_end_.size())
    throw InvalidLaunchConfig("unknown stream id " + std::to_string(sid));
  return timeline_end_[sid];
}

double Context::makespan_s() const {
  run_drain_hook();
  std::lock_guard<std::mutex> lock(mutex_);
  return makespan_locked();
}

void Context::stream_wait(std::size_t sid, double t_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sid >= timeline_end_.size())
    throw InvalidLaunchConfig("unknown stream id " + std::to_string(sid));
  timeline_end_[sid] = std::max(timeline_end_[sid], t_s);
}

void Context::align_streams() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fill(timeline_end_.begin(), timeline_end_.end(), makespan_locked());
}

std::size_t Context::transfer_stream() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (transfer_stream_id_ == 0) {
    timeline_end_.push_back(makespan_locked());
    transfer_stream_id_ = timeline_end_.size() - 1;
  }
  return transfer_stream_id_;
}

void* Context::malloc_locked(std::size_t bytes) {
  if (stats_.bytes_in_use + bytes > props_.total_global_memory) {
    throw DeviceBadAlloc("requested " + std::to_string(bytes) +
                         " bytes with " +
                         std::to_string(stats_.bytes_in_use) +
                         " in use of " +
                         std::to_string(props_.total_global_memory));
  }
  void* ptr = std::malloc(bytes);
  if (ptr == nullptr) throw DeviceBadAlloc("host backing store exhausted");
  allocations_.emplace(ptr, bytes);
  ++stats_.allocations;
  stats_.bytes_in_use += bytes;
  stats_.total_bytes_allocated += bytes;
  if (stats_.bytes_in_use > stats_.peak_bytes_in_use)
    stats_.peak_bytes_in_use = stats_.bytes_in_use;
  return ptr;
}

void* Context::malloc_bytes(std::size_t bytes) {
  if (bytes == 0) bytes = 1;  // cudaMalloc(0) returns a unique pointer too
  std::lock_guard<std::mutex> lock(mutex_);
  return malloc_locked(bytes);
}

std::size_t Context::pool_class_bytes(std::size_t bytes) {
  std::size_t cls = kMinPoolClassBytes;
  while (cls < bytes) cls <<= 1;
  return cls;
}

void* Context::pool_alloc(std::size_t bytes) {
  const std::size_t cls = pool_class_bytes(bytes == 0 ? 1 : bytes);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = pool_free_lists_.find(cls);
  if (it != pool_free_lists_.end() && !it->second.empty()) {
    // Freelist hit: adopt the cached block. It re-enters allocations_ as a
    // client-owned allocation; total_bytes_allocated does NOT grow because
    // no new device memory was carved out.
    void* ptr = it->second.back();
    it->second.pop_back();
    ++stats_.pool_hits;
    stats_.pool_bytes_held -= cls;
    allocations_.emplace(ptr, cls);
    ++stats_.allocations;
    stats_.bytes_in_use += cls;
    if (stats_.bytes_in_use > stats_.peak_bytes_in_use)
      stats_.peak_bytes_in_use = stats_.bytes_in_use;
    return ptr;
  }
  ++stats_.pool_misses;
  // Cached blocks count against device memory too; if the request only
  // fails because of them, release the cache and retry (the behavior of
  // cudaMallocAsync when the pool's reserve blocks a fresh allocation).
  if (stats_.bytes_in_use + stats_.pool_bytes_held + cls >
          props_.total_global_memory &&
      stats_.pool_bytes_held > 0) {
    trim_locked();
  }
  return malloc_locked(cls);
}

void Context::pool_free(void* ptr) {
  if (ptr == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = allocations_.find(ptr);
  if (it == allocations_.end())
    throw InvalidDevicePointer("pool_free of unknown pointer");
  const std::size_t cls = it->second;
  stats_.bytes_in_use -= cls;
  ++stats_.frees;
  allocations_.erase(it);
  pool_free_lists_[cls].push_back(ptr);
  stats_.pool_bytes_held += cls;
}

void Context::trim() {
  std::lock_guard<std::mutex> lock(mutex_);
  trim_locked();
}

void Context::trim_locked() {
  for (auto& [cls, list] : pool_free_lists_) {
    (void)cls;
    for (void* ptr : list) std::free(ptr);
    list.clear();
  }
  pool_free_lists_.clear();
  stats_.pool_bytes_held = 0;
  ++stats_.pool_trims;
}

void Context::free_bytes(void* ptr) {
  if (ptr == nullptr) return;  // cudaFree(nullptr) is a no-op
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = allocations_.find(ptr);
  if (it == allocations_.end())
    throw InvalidDevicePointer("free of unknown pointer");
  stats_.bytes_in_use -= it->second;
  ++stats_.frees;
  allocations_.erase(it);
  std::free(ptr);
}

std::size_t Context::allocation_size(const void* ptr) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = allocations_.find(ptr);
  if (it == allocations_.end())
    throw InvalidDevicePointer("allocation_size of unknown pointer");
  return it->second;
}

void Context::check_device_range(const void* ptr, std::size_t bytes,
                                 const char* what) const {
  // Interior pointers are legal (copies from an offset into an allocation);
  // scan for a containing block.
  const auto* p = static_cast<const char*>(ptr);
  for (const auto& [base, size] : allocations_) {
    const auto* b = static_cast<const char*>(base);
    if (p >= b && p + bytes <= b + size) return;
  }
  throw InvalidDevicePointer(std::string(what) +
                             ": range not contained in any device allocation");
}

void Context::copy_h2d(void* dst_device, const void* src_host,
                       std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_device_range(dst_device, bytes, "copy_h2d dst");
  std::memcpy(dst_device, src_host, bytes);
  ++stats_.h2d_transfers;
  stats_.h2d_bytes += bytes;
  const double d = modeled_transfer_time(props_, bytes);
  stats_.simulated_transfer_time_s += d;
  // Synchronous cudaMemcpy: device-wide barrier — every stream timeline
  // jumps to the transfer's end, so single-stream programs keep
  // makespan == serial sum exactly.
  std::fill(timeline_end_.begin(), timeline_end_.end(),
            makespan_locked() + d);
  update_overlap_locked();
}

void Context::copy_d2h(void* dst_host, const void* src_device,
                       std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_device_range(src_device, bytes, "copy_d2h src");
  std::memcpy(dst_host, src_device, bytes);
  ++stats_.d2h_transfers;
  stats_.d2h_bytes += bytes;
  const double d = modeled_transfer_time(props_, bytes);
  stats_.simulated_transfer_time_s += d;
  std::fill(timeline_end_.begin(), timeline_end_.end(),
            makespan_locked() + d);
  update_overlap_locked();
}

void Context::copy_d2d(void* dst_device, const void* src_device,
                       std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_device_range(dst_device, bytes, "copy_d2d dst");
  check_device_range(src_device, bytes, "copy_d2d src");
  std::memmove(dst_device, src_device, bytes);
  ++stats_.d2d_copies;
  stats_.d2d_bytes += bytes;
  const double d = modeled_d2d_time(props_, bytes);
  stats_.simulated_transfer_time_s += d;
  std::fill(timeline_end_.begin(), timeline_end_.end(),
            makespan_locked() + d);
  update_overlap_locked();
}

void Context::copy_h2d_async(void* dst_device, const void* src_host,
                             std::size_t bytes, std::size_t stream_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stream_id >= timeline_end_.size())
    throw InvalidLaunchConfig("unknown stream id " +
                              std::to_string(stream_id));
  check_device_range(dst_device, bytes, "copy_h2d_async dst");
  std::memcpy(dst_device, src_host, bytes);  // functionally immediate
  ++stats_.h2d_transfers;
  stats_.h2d_bytes += bytes;
  const double d = modeled_transfer_time(props_, bytes);
  stats_.simulated_transfer_time_s += d;
  timeline_end_[stream_id] += d;  // advances only this stream
  update_overlap_locked();
}

void Context::copy_d2h_async(void* dst_host, const void* src_device,
                             std::size_t bytes, std::size_t stream_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stream_id >= timeline_end_.size())
    throw InvalidLaunchConfig("unknown stream id " +
                              std::to_string(stream_id));
  check_device_range(src_device, bytes, "copy_d2h_async src");
  std::memcpy(dst_host, src_device, bytes);  // functionally immediate
  ++stats_.d2h_transfers;
  stats_.d2h_bytes += bytes;
  const double d = modeled_transfer_time(props_, bytes);
  stats_.simulated_transfer_time_s += d;
  timeline_end_[stream_id] += d;
  update_overlap_locked();
}

void Context::validate_launch(const Dim3& grid, const Dim3& block) const {
  if (block.count() == 0 || grid.count() == 0)
    throw InvalidLaunchConfig("zero-sized grid or block");
  if (block.count() > props_.max_threads_per_block)
    throw InvalidLaunchConfig("block of " + std::to_string(block.count()) +
                              " threads exceeds device limit of " +
                              std::to_string(props_.max_threads_per_block));
  if (grid.x > props_.max_grid_dim_x)
    throw InvalidLaunchConfig("grid.x exceeds device limit");
}

void Context::note_spmv_selection(SpmvKernelKind kind,
                                  std::uint64_t bytes_saved_vs_baseline) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.kernel_selections[static_cast<std::size_t>(kind)];
  stats_.spmv_bytes_saved_vs_baseline += bytes_saved_vs_baseline;
}

void Context::note_direction_selection(TraversalDirection direction) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.direction_selections[static_cast<std::size_t>(direction)];
}

void Context::note_frontier_compaction() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.frontier_compactions;
}

void Context::note_pull_early_exit_rows(std::uint64_t rows) {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.pull_early_exit_rows += rows;
}

void Context::note_nvals_recount() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.nvals_recounts;
}

void Context::note_spgemm_selection(SpgemmStrategy strategy) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.spgemm_selections[static_cast<std::size_t>(strategy)];
}

void Context::note_spgemm_hash(std::uint64_t collisions,
                               std::uint64_t table_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.spgemm_hash_collisions += collisions;
  stats_.spgemm_hash_table_bytes += table_bytes;
}

void Context::note_spgemm_masked_products_avoided(std::uint64_t products) {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.spgemm_masked_products_avoided += products;
}

void Context::note_fused_group() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.fused_launches;
}

void Context::note_halo_exchange(std::uint64_t shards, std::uint64_t bytes,
                                 double seconds_hidden) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (shards > stats_.shards_active) stats_.shards_active = shards;
  stats_.halo_bytes_exchanged += bytes;
  stats_.halo_seconds_hidden += seconds_hidden;
}

void Context::note_bit_selection(std::uint64_t words_touched) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.bit_selections;
  stats_.bit_words_touched += words_touched;
}

void Context::note_bit_conversion() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.bit_conversions;
}

void Context::account_launch(const LaunchStats& stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.kernel_launches;
  stats_.kernel_ops += stats.ops;
  stats_.kernel_bytes_read += stats.bytes_read;
  stats_.kernel_bytes_written += stats.bytes_written;
  double t = modeled_kernel_time(props_, stats);
  // Inside a composite (fused) launch only the head pays the fixed launch
  // overhead; every further launch is charged its work time alone.
  if (FusedLaunchScope* scope = FusedLaunchScope::current()) {
    if (scope->head_charged_) {
      t -= props_.kernel_launch_overhead_s;
      if (t < 0.0) t = 0.0;
      ++stats_.launches_elided;
    } else {
      scope->head_charged_ = true;
    }
  }
  stats_.simulated_kernel_time_s += t;
  timeline_end_[0] += t;  // kernels run on the compute stream
  update_overlap_locked();
}

FusedLaunchScope*& FusedLaunchScope::current() {
  thread_local FusedLaunchScope* tl_scope = nullptr;
  return tl_scope;
}

FusedLaunchScope::FusedLaunchScope() : prev_(current()) { current() = this; }

FusedLaunchScope::~FusedLaunchScope() { current() = prev_; }

namespace {
/// Per-thread device binding; null means "the process-wide default".
thread_local Context* tl_device_override = nullptr;
}  // namespace

ScopedDevice::ScopedDevice(Context& ctx) : previous_(tl_device_override) {
  tl_device_override = &ctx;
}

ScopedDevice::~ScopedDevice() { tl_device_override = previous_; }

Context& device() {
  if (tl_device_override != nullptr) return *tl_device_override;
  static Context ctx{DeviceProperties{}, /*worker_count=*/1};
  return ctx;
}

}  // namespace gpu_sim
