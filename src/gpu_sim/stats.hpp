#pragma once

/// @file stats.hpp
/// Cumulative counters of everything the simulated device did. Benches read
/// these to report simulated kernel time, transfer time and traffic exactly
/// the way nvprof output backed the paper's figures.

#include <array>
#include <cstddef>
#include <cstdint>

namespace gpu_sim {

/// SpMV kernel variants the adaptive engine (sparse/spmv_select.hpp) can
/// dispatch to. Lives next to DeviceStats so selections can be counted per
/// variant the way nvprof attributes time to kernel names.
enum class SpmvKernelKind : unsigned {
  kCsrScalar = 0,       ///< row-parallel CSR (one thread per row)
  kCsrLoadBalanced,     ///< merge-path / nnz-chunked CSR
  kEll,                 ///< padded ELL slab
  kHyb,                 ///< ELL slab + COO tail
  kCount
};

inline constexpr std::size_t kSpmvKernelKindCount =
    static_cast<std::size_t>(SpmvKernelKind::kCount);

inline const char* to_string(SpmvKernelKind k) {
  switch (k) {
    case SpmvKernelKind::kCsrScalar: return "csr-scalar";
    case SpmvKernelKind::kCsrLoadBalanced: return "csr-load-balanced";
    case SpmvKernelKind::kEll: return "ell";
    case SpmvKernelKind::kHyb: return "hyb";
    case SpmvKernelKind::kCount: break;
  }
  return "unknown";
}

/// Traversal directions the direction-optimizing vxm/mxv engine can take
/// (backend_gpu/ops.hpp). Push scatters from the sparse frontier; pull
/// gathers into the unvisited set from the transpose (CSC) side.
enum class TraversalDirection : unsigned {
  kPush = 0,  ///< frontier-sized scatter over the sparse index list
  kPull,      ///< unvisited-row gather with per-row early exit
  kCount
};

inline constexpr std::size_t kTraversalDirectionCount =
    static_cast<std::size_t>(TraversalDirection::kCount);

inline const char* to_string(TraversalDirection d) {
  switch (d) {
    case TraversalDirection::kPush: return "push";
    case TraversalDirection::kPull: return "pull";
    case TraversalDirection::kCount: break;
  }
  return "unknown";
}

/// SpGEMM strategies the adaptive mxm engine (sparse/spgemm_select.hpp) can
/// dispatch to. ESC materializes every partial product and contracts with a
/// sort; hash accumulates per-row into an open-addressing table.
enum class SpgemmStrategy : unsigned {
  kEsc = 0,  ///< expansion / sorting / contraction
  kHash,     ///< row-wise hash-Gustavson accumulate
  kCount
};

inline constexpr std::size_t kSpgemmStrategyCount =
    static_cast<std::size_t>(SpgemmStrategy::kCount);

inline const char* to_string(SpgemmStrategy s) {
  switch (s) {
    case SpgemmStrategy::kEsc: return "esc";
    case SpgemmStrategy::kHash: return "hash";
    case SpgemmStrategy::kCount: break;
  }
  return "unknown";
}

struct DeviceStats {
  // Memory manager activity.
  std::uint64_t allocations = 0;
  std::uint64_t frees = 0;
  std::size_t bytes_in_use = 0;
  std::size_t peak_bytes_in_use = 0;
  std::uint64_t total_bytes_allocated = 0;

  // Size-class memory pool activity (Context::pool_alloc / pool_free).
  // pool_bytes_held is point-in-time: bytes cached on the freelists,
  // allocated from the device heap but not owned by any client.
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  std::uint64_t pool_trims = 0;
  std::size_t pool_bytes_held = 0;

  /// Fraction of pool allocations served from a freelist.
  double pool_hit_rate() const {
    const std::uint64_t total = pool_hits + pool_misses;
    return total > 0 ? static_cast<double>(pool_hits) /
                           static_cast<double>(total)
                     : 0.0;
  }

  // Kernel activity.
  std::uint64_t kernel_launches = 0;
  std::uint64_t kernel_ops = 0;
  std::uint64_t kernel_bytes_read = 0;
  std::uint64_t kernel_bytes_written = 0;
  double simulated_kernel_time_s = 0.0;

  // Transfer activity.
  std::uint64_t h2d_transfers = 0;
  std::uint64_t h2d_bytes = 0;
  std::uint64_t d2h_transfers = 0;
  std::uint64_t d2h_bytes = 0;
  std::uint64_t d2d_copies = 0;
  std::uint64_t d2d_bytes = 0;
  double simulated_transfer_time_s = 0.0;

  // Adaptive SpMV engine activity (sparse/spmv_select.hpp): how many SpMV
  // dispatches picked each kernel variant, and how much memory traffic those
  // choices avoided relative to the row-parallel CSR baseline.
  std::array<std::uint64_t, kSpmvKernelKindCount> kernel_selections{};
  std::uint64_t spmv_bytes_saved_vs_baseline = 0;

  std::uint64_t kernel_selections_total() const {
    std::uint64_t t = 0;
    for (auto v : kernel_selections) t += v;
    return t;
  }

  // Direction-optimizing traversal engine activity (backend_gpu/ops.hpp):
  // per-call push/pull decisions, sparse-frontier compactions actually
  // materialized, rows the pull kernel left before exhausting their
  // adjacency, and presence-bitmap recounts the nvals cache could not avoid.
  std::array<std::uint64_t, kTraversalDirectionCount> direction_selections{};
  std::uint64_t frontier_compactions = 0;
  std::uint64_t pull_early_exit_rows = 0;
  std::uint64_t nvals_recounts = 0;

  std::uint64_t direction_selections_total() const {
    std::uint64_t t = 0;
    for (auto v : direction_selections) t += v;
    return t;
  }

  // Adaptive SpGEMM engine activity (sparse/spgemm_select.hpp): per-call
  // ESC/hash strategy decisions, probe-chain collisions and table bytes the
  // hash path paid, and partial products the mask-seeded table refused to
  // insert (the masked early exit, quantified).
  std::array<std::uint64_t, kSpgemmStrategyCount> spgemm_selections{};
  std::uint64_t spgemm_hash_collisions = 0;
  std::uint64_t spgemm_hash_table_bytes = 0;
  std::uint64_t spgemm_masked_products_avoided = 0;

  std::uint64_t spgemm_selections_total() const {
    std::uint64_t t = 0;
    for (auto v : spgemm_selections) t += v;
    return t;
  }

  // Lazy op-DAG fusion activity (sparse/fusion_plan.hpp): multi-op groups
  // the planner charged as one composite launch, individual launches whose
  // fixed overhead that composite accounting elided, and wall-clock seconds
  // the multi-stream timeline hid by overlapping transfers with kernels
  // (serial sum of modeled durations minus the makespan over all streams).
  std::uint64_t fused_launches = 0;
  std::uint64_t launches_elided = 0;
  double overlap_seconds_hidden = 0.0;

  // Sharded multi-device activity (backend_gpu/sharded_ops.hpp): the widest
  // shard fan-out any single op on this context coordinated (point-in-time
  // high-water mark), total halo bytes moved across the device boundary for
  // sharded mxv/vxm (input-slice broadcasts plus per-shard output returns),
  // and the seconds of that exchange the pipeline hid under a concurrently
  // running shard kernel.
  std::uint64_t shards_active = 0;
  std::uint64_t halo_bytes_exchanged = 0;
  double halo_seconds_hidden = 0.0;

  // Bit-format engine activity (sparse/bitmap.hpp, backend_gpu/bit_ops.hpp):
  // how many ops the selectors routed onto the word-granularity bitmap
  // kernels, the 64-bit words those kernels actually touched (the Bit
  // analog of scanned edges — multiply by 8 for bytes), and explicit
  // CSR -> bitmap conversions materialized (one per cold view orientation).
  std::uint64_t bit_selections = 0;
  std::uint64_t bit_words_touched = 0;
  std::uint64_t bit_conversions = 0;

  /// Total simulated device-side time: the number the GPU columns of every
  /// table/figure report. This is the *serial* sum of modeled durations;
  /// subtract overlap_seconds_hidden for the multi-stream makespan.
  double simulated_total_time_s() const {
    return simulated_kernel_time_s + simulated_transfer_time_s;
  }
};

/// Difference of two cumulative snapshots — used by benches to attribute
/// device activity to one timed region.
inline DeviceStats operator-(const DeviceStats& a, const DeviceStats& b) {
  DeviceStats d;
  d.allocations = a.allocations - b.allocations;
  d.frees = a.frees - b.frees;
  d.bytes_in_use = a.bytes_in_use;  // point-in-time, not differenced
  d.peak_bytes_in_use = a.peak_bytes_in_use;
  d.total_bytes_allocated = a.total_bytes_allocated - b.total_bytes_allocated;
  d.pool_hits = a.pool_hits - b.pool_hits;
  d.pool_misses = a.pool_misses - b.pool_misses;
  d.pool_trims = a.pool_trims - b.pool_trims;
  d.pool_bytes_held = a.pool_bytes_held;  // point-in-time, not differenced
  d.kernel_launches = a.kernel_launches - b.kernel_launches;
  d.kernel_ops = a.kernel_ops - b.kernel_ops;
  d.kernel_bytes_read = a.kernel_bytes_read - b.kernel_bytes_read;
  d.kernel_bytes_written = a.kernel_bytes_written - b.kernel_bytes_written;
  d.simulated_kernel_time_s =
      a.simulated_kernel_time_s - b.simulated_kernel_time_s;
  d.h2d_transfers = a.h2d_transfers - b.h2d_transfers;
  d.h2d_bytes = a.h2d_bytes - b.h2d_bytes;
  d.d2h_transfers = a.d2h_transfers - b.d2h_transfers;
  d.d2h_bytes = a.d2h_bytes - b.d2h_bytes;
  d.d2d_copies = a.d2d_copies - b.d2d_copies;
  d.d2d_bytes = a.d2d_bytes - b.d2d_bytes;
  d.simulated_transfer_time_s =
      a.simulated_transfer_time_s - b.simulated_transfer_time_s;
  for (std::size_t i = 0; i < kSpmvKernelKindCount; ++i)
    d.kernel_selections[i] = a.kernel_selections[i] - b.kernel_selections[i];
  d.spmv_bytes_saved_vs_baseline =
      a.spmv_bytes_saved_vs_baseline - b.spmv_bytes_saved_vs_baseline;
  for (std::size_t i = 0; i < kTraversalDirectionCount; ++i)
    d.direction_selections[i] =
        a.direction_selections[i] - b.direction_selections[i];
  d.frontier_compactions = a.frontier_compactions - b.frontier_compactions;
  d.pull_early_exit_rows = a.pull_early_exit_rows - b.pull_early_exit_rows;
  d.nvals_recounts = a.nvals_recounts - b.nvals_recounts;
  for (std::size_t i = 0; i < kSpgemmStrategyCount; ++i)
    d.spgemm_selections[i] = a.spgemm_selections[i] - b.spgemm_selections[i];
  d.spgemm_hash_collisions =
      a.spgemm_hash_collisions - b.spgemm_hash_collisions;
  d.spgemm_hash_table_bytes =
      a.spgemm_hash_table_bytes - b.spgemm_hash_table_bytes;
  d.spgemm_masked_products_avoided =
      a.spgemm_masked_products_avoided - b.spgemm_masked_products_avoided;
  d.fused_launches = a.fused_launches - b.fused_launches;
  d.launches_elided = a.launches_elided - b.launches_elided;
  d.overlap_seconds_hidden =
      a.overlap_seconds_hidden - b.overlap_seconds_hidden;
  d.shards_active = a.shards_active;  // high-water mark, not differenced
  d.halo_bytes_exchanged = a.halo_bytes_exchanged - b.halo_bytes_exchanged;
  d.halo_seconds_hidden = a.halo_seconds_hidden - b.halo_seconds_hidden;
  d.bit_selections = a.bit_selections - b.bit_selections;
  d.bit_words_touched = a.bit_words_touched - b.bit_words_touched;
  d.bit_conversions = a.bit_conversions - b.bit_conversions;
  return d;
}

}  // namespace gpu_sim
