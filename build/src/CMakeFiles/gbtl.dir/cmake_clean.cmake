file(REMOVE_RECURSE
  "CMakeFiles/gbtl.dir/gpu_sim/context.cpp.o"
  "CMakeFiles/gbtl.dir/gpu_sim/context.cpp.o.d"
  "CMakeFiles/gbtl.dir/gpu_sim/thread_pool.cpp.o"
  "CMakeFiles/gbtl.dir/gpu_sim/thread_pool.cpp.o.d"
  "CMakeFiles/gbtl.dir/graph/generators.cpp.o"
  "CMakeFiles/gbtl.dir/graph/generators.cpp.o.d"
  "CMakeFiles/gbtl.dir/graph/mmio.cpp.o"
  "CMakeFiles/gbtl.dir/graph/mmio.cpp.o.d"
  "libgbtl.a"
  "libgbtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
