# Empty compiler generated dependencies file for gbtl.
# This may be replaced when dependencies are built.
