file(REMOVE_RECURSE
  "libgbtl.a"
)
