
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu_sim/context.cpp" "src/CMakeFiles/gbtl.dir/gpu_sim/context.cpp.o" "gcc" "src/CMakeFiles/gbtl.dir/gpu_sim/context.cpp.o.d"
  "/root/repo/src/gpu_sim/thread_pool.cpp" "src/CMakeFiles/gbtl.dir/gpu_sim/thread_pool.cpp.o" "gcc" "src/CMakeFiles/gbtl.dir/gpu_sim/thread_pool.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/gbtl.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/gbtl.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/mmio.cpp" "src/CMakeFiles/gbtl.dir/graph/mmio.cpp.o" "gcc" "src/CMakeFiles/gbtl.dir/graph/mmio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
