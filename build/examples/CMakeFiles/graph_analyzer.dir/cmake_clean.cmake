file(REMOVE_RECURSE
  "CMakeFiles/graph_analyzer.dir/graph_analyzer.cpp.o"
  "CMakeFiles/graph_analyzer.dir/graph_analyzer.cpp.o.d"
  "graph_analyzer"
  "graph_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
