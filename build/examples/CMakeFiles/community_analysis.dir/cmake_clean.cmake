file(REMOVE_RECURSE
  "CMakeFiles/community_analysis.dir/community_analysis.cpp.o"
  "CMakeFiles/community_analysis.dir/community_analysis.cpp.o.d"
  "community_analysis"
  "community_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
