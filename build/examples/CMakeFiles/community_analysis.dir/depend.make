# Empty dependencies file for community_analysis.
# This may be replaced when dependencies are built.
