# Empty dependencies file for flow_network.
# This may be replaced when dependencies are built.
