file(REMOVE_RECURSE
  "CMakeFiles/flow_network.dir/flow_network.cpp.o"
  "CMakeFiles/flow_network.dir/flow_network.cpp.o.d"
  "flow_network"
  "flow_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
