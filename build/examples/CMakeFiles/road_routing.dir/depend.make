# Empty dependencies file for road_routing.
# This may be replaced when dependencies are built.
