file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_mxv.dir/bench_fig1_mxv.cpp.o"
  "CMakeFiles/bench_fig1_mxv.dir/bench_fig1_mxv.cpp.o.d"
  "bench_fig1_mxv"
  "bench_fig1_mxv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_mxv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
