# Empty dependencies file for bench_fig3_pagerank.
# This may be replaced when dependencies are built.
