file(REMOVE_RECURSE
  "CMakeFiles/bench_ablC_batching.dir/bench_ablC_batching.cpp.o"
  "CMakeFiles/bench_ablC_batching.dir/bench_ablC_batching.cpp.o.d"
  "bench_ablC_batching"
  "bench_ablC_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablC_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
