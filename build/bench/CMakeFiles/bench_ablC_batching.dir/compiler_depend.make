# Empty compiler generated dependencies file for bench_ablC_batching.
# This may be replaced when dependencies are built.
