file(REMOVE_RECURSE
  "CMakeFiles/bench_ablA_formats.dir/bench_ablA_formats.cpp.o"
  "CMakeFiles/bench_ablA_formats.dir/bench_ablA_formats.cpp.o.d"
  "bench_ablA_formats"
  "bench_ablA_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablA_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
