file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_triangle.dir/bench_fig4_triangle.cpp.o"
  "CMakeFiles/bench_fig4_triangle.dir/bench_fig4_triangle.cpp.o.d"
  "bench_fig4_triangle"
  "bench_fig4_triangle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_triangle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
