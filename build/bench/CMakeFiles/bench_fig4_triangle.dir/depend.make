# Empty dependencies file for bench_fig4_triangle.
# This may be replaced when dependencies are built.
