# Empty dependencies file for bench_table3_sssp.
# This may be replaced when dependencies are built.
