file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_sssp.dir/bench_table3_sssp.cpp.o"
  "CMakeFiles/bench_table3_sssp.dir/bench_table3_sssp.cpp.o.d"
  "bench_table3_sssp"
  "bench_table3_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
