# Empty dependencies file for bench_fig2_mxm.
# This may be replaced when dependencies are built.
