file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_mxm.dir/bench_fig2_mxm.cpp.o"
  "CMakeFiles/bench_fig2_mxm.dir/bench_fig2_mxm.cpp.o.d"
  "bench_fig2_mxm"
  "bench_fig2_mxm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_mxm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
