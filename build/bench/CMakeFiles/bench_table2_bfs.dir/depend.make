# Empty dependencies file for bench_table2_bfs.
# This may be replaced when dependencies are built.
