# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_gpu_sim[1]_include.cmake")
include("/root/repo/build/tests/test_frontend_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_algorithms[1]_include.cmake")
include("/root/repo/build/tests/test_sparse[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_algebra[1]_include.cmake")
include("/root/repo/build/tests/test_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_equivalence[1]_include.cmake")
include("/root/repo/build/tests/test_gpu_backend[1]_include.cmake")
include("/root/repo/build/tests/test_algorithms_ext[1]_include.cmake")
include("/root/repo/build/tests/test_oracles[1]_include.cmake")
include("/root/repo/build/tests/test_mask_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_similarity[1]_include.cmake")
include("/root/repo/build/tests/test_utility[1]_include.cmake")
include("/root/repo/build/tests/test_views[1]_include.cmake")
include("/root/repo/build/tests/test_thread_pool[1]_include.cmake")
include("/root/repo/build/tests/test_resize_oom[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_scc_topo[1]_include.cmake")
