file(REMOVE_RECURSE
  "CMakeFiles/test_mask_sweep.dir/test_mask_sweep.cpp.o"
  "CMakeFiles/test_mask_sweep.dir/test_mask_sweep.cpp.o.d"
  "test_mask_sweep"
  "test_mask_sweep.pdb"
  "test_mask_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mask_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
