# Empty dependencies file for test_mask_sweep.
# This may be replaced when dependencies are built.
