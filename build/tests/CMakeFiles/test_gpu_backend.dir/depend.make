# Empty dependencies file for test_gpu_backend.
# This may be replaced when dependencies are built.
