file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_backend.dir/test_gpu_backend.cpp.o"
  "CMakeFiles/test_gpu_backend.dir/test_gpu_backend.cpp.o.d"
  "test_gpu_backend"
  "test_gpu_backend.pdb"
  "test_gpu_backend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
