file(REMOVE_RECURSE
  "CMakeFiles/test_resize_oom.dir/test_resize_oom.cpp.o"
  "CMakeFiles/test_resize_oom.dir/test_resize_oom.cpp.o.d"
  "test_resize_oom"
  "test_resize_oom.pdb"
  "test_resize_oom[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resize_oom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
