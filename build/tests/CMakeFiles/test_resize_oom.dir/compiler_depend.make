# Empty compiler generated dependencies file for test_resize_oom.
# This may be replaced when dependencies are built.
