file(REMOVE_RECURSE
  "CMakeFiles/test_algorithms_ext.dir/test_algorithms_ext.cpp.o"
  "CMakeFiles/test_algorithms_ext.dir/test_algorithms_ext.cpp.o.d"
  "test_algorithms_ext"
  "test_algorithms_ext.pdb"
  "test_algorithms_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algorithms_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
