file(REMOVE_RECURSE
  "CMakeFiles/test_frontend_smoke.dir/test_frontend_smoke.cpp.o"
  "CMakeFiles/test_frontend_smoke.dir/test_frontend_smoke.cpp.o.d"
  "test_frontend_smoke"
  "test_frontend_smoke.pdb"
  "test_frontend_smoke[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frontend_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
