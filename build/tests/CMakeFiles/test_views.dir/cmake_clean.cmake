file(REMOVE_RECURSE
  "CMakeFiles/test_views.dir/test_views.cpp.o"
  "CMakeFiles/test_views.dir/test_views.cpp.o.d"
  "test_views"
  "test_views.pdb"
  "test_views[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
