file(REMOVE_RECURSE
  "CMakeFiles/test_scc_topo.dir/test_scc_topo.cpp.o"
  "CMakeFiles/test_scc_topo.dir/test_scc_topo.cpp.o.d"
  "test_scc_topo"
  "test_scc_topo.pdb"
  "test_scc_topo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scc_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
