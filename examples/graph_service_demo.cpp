/// Serving-layer tour: stand up a GraphStore and a QueryExecutor, submit a
/// mixed query load from several client threads, show deadlines cancelling
/// a hopeless query and the admission queue shedding under overload, then
/// print the service stats block. See docs/service.md for the architecture.

#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "service/executor.hpp"
#include "service/graph_store.hpp"
#include "service/query.hpp"

int main() {
  using namespace std::chrono_literals;

  // 1. The store: load every graph once; queries reference them by name.
  auto store = std::make_shared<service::GraphStore>();
  store->add("web", gbtl_graph::rmat(/*scale=*/8, /*edgefactor=*/8,
                                     /*seed=*/42));
  store->add("social",
             gbtl_graph::remove_self_loops(gbtl_graph::symmetrize(
                 gbtl_graph::rmat(/*scale=*/7, /*edgefactor=*/6,
                                  /*seed=*/7))));
  std::printf("store: %zu graphs\n", store->size());

  // 2. The executor: two workers, each with a private simulated GPU and a
  // device-side graph cache; a bounded queue sheds when overloaded.
  service::ExecutorOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 32;
  service::QueryExecutor exec(store, opts);

  // 3. Concurrent clients submitting a mixed workload.
  std::vector<std::future<service::QueryResult>> futures(12);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 3; ++c)
    clients.emplace_back([&, c] {
      for (std::size_t i = c; i < futures.size(); i += 3) {
        service::QueryRequest req;
        switch (i % 3) {
          case 0:
            req.kind = service::QueryKind::kBfs;
            req.graph = "web";
            req.source = i * 17;
            break;
          case 1:
            req.kind = service::QueryKind::kPageRank;
            req.graph = "web";
            req.max_iterations = 20;
            break;
          case 2:
            req.kind = service::QueryKind::kTriangleCount;
            req.graph = "social";
            break;
        }
        futures[i] = exec.submit(req);
      }
    });
  for (auto& t : clients) t.join();
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto res = futures[i].get();
    std::printf("query %2zu -> %-9s  worker %zu  %6lld us\n", i,
                service::to_string(res.status), res.worker,
                static_cast<long long>(res.latency.count()));
  }

  // 4. Deadlines: a query admitted with an already-impossible budget is
  // cancelled at a checkpoint (or before it ever touches the device) —
  // its worker moves on to the next query instead of burning the GPU.
  service::QueryRequest hopeless;
  hopeless.kind = service::QueryKind::kPageRank;
  hopeless.graph = "web";
  hopeless.tol = 0.0;            // would iterate forever...
  hopeless.max_iterations = 1000000;
  hopeless.timeout = 5ms;        // ...but only gets five milliseconds
  const auto cancelled = exec.submit(hopeless).get();
  std::printf("hopeless query -> %s (%s)\n",
              service::to_string(cancelled.status),
              cancelled.error.c_str());

  // 5. The stats block, DeviceStats-style: snapshot and read.
  const auto stats = exec.stats();
  std::printf("\nservice stats\n");
  std::printf("  submitted: %llu  completed: %llu  cancelled: %llu  "
              "shed: %llu  failed: %llu\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.cancelled),
              static_cast<unsigned long long>(stats.shed),
              static_cast<unsigned long long>(stats.failed));
  std::printf("  latency p50/p95/p99: %.0f / %.0f / %.0f us\n",
              stats.latency.quantile(0.50), stats.latency.quantile(0.95),
              stats.latency.quantile(0.99));
  return 0;
}
