/// Quickstart: build a small graph, run one GraphBLAS primitive and one
/// algorithm on BOTH backends, and show the simulated-device accounting —
/// a five-minute tour of the whole library.

#include <cstdio>

#include "algorithms/algorithms.hpp"
#include "gbtl/gbtl.hpp"
#include "gpu_sim/context.hpp"

namespace {

template <typename Tag>
void demo(const char* name) {
  // A tiny directed graph:
  //   0 -> 1 -> 2 -> 3
  //    \------------^
  grb::Matrix<double, Tag> graph(4, 4);
  graph.build({0, 1, 2, 0}, {1, 2, 3, 3}, {1.0, 1.0, 1.0, 5.0});

  std::printf("=== backend: %s ===\n", name);
  std::printf("graph: %llu vertices, %llu edges\n",
              static_cast<unsigned long long>(graph.nrows()),
              static_cast<unsigned long long>(graph.nvals()));

  // One primitive: out-degrees via row reduction.
  grb::Vector<double, Tag> degree(4);
  grb::reduce(degree, grb::NoMask{}, grb::NoAccumulate{},
              grb::PlusMonoid<double>{},
              grb::Matrix<double, Tag>(graph));
  std::printf("weighted out-degree of vertex 0: %.1f\n",
              degree.extractElement(0));

  // One algorithm: BFS levels from vertex 0.
  grb::Vector<grb::IndexType, Tag> levels(4);
  algorithms::bfs_level(graph, 0, levels);
  for (grb::IndexType v = 0; v < 4; ++v)
    std::printf("  vertex %llu: BFS level %llu\n",
                static_cast<unsigned long long>(v),
                static_cast<unsigned long long>(levels.extractElement(v)));

  // And shortest paths, which respect the weights (0->3 direct costs 5,
  // the hop path costs 3).
  grb::Vector<double, Tag> dist(4);
  algorithms::sssp(graph, 0, dist);
  std::printf("shortest 0->3 distance: %.1f\n", dist.extractElement(3));
}

}  // namespace

int main() {
  demo<grb::Sequential>("sequential (CPU reference)");

  // A fresh context scoped to the GpuSim run: its counters start at zero,
  // so no reset_stats() bookkeeping and nothing else can bleed into them.
  gpu_sim::Context ctx;
  {
    gpu_sim::ScopedDevice bind(ctx);
    demo<grb::GpuSim>("gpu-sim (simulated CUDA backend)");
  }

  const auto stats = ctx.stats();
  std::printf("\nsimulated device activity for the GpuSim run:\n");
  std::printf("  kernel launches:  %llu\n",
              static_cast<unsigned long long>(stats.kernel_launches));
  std::printf("  H2D transfers:    %llu (%llu bytes)\n",
              static_cast<unsigned long long>(stats.h2d_transfers),
              static_cast<unsigned long long>(stats.h2d_bytes));
  std::printf("  D2H transfers:    %llu (%llu bytes)\n",
              static_cast<unsigned long long>(stats.d2h_transfers),
              static_cast<unsigned long long>(stats.d2h_bytes));
  std::printf("  simulated time:   %.3f us kernels + %.3f us transfers\n",
              stats.simulated_kernel_time_s * 1e6,
              stats.simulated_transfer_time_s * 1e6);
  return 0;
}
