/// Supply-chain throughput: maximum flow through a layered
/// source->factories->warehouses->sink capacity network, plus the
/// bottleneck (min-cut) capacity check, demonstrating the max-flow
/// algorithm and structural GraphBLAS ops on a realistic DAG.
///
///   ./flow_network [factories] [warehouses]

#include <cstdio>
#include <cstdlib>
#include <random>

#include "algorithms/algorithms.hpp"
#include "gbtl/gbtl.hpp"

int main(int argc, char** argv) {
  const grb::IndexType factories = argc > 1 ? std::atoi(argv[1]) : 6;
  const grb::IndexType warehouses = argc > 2 ? std::atoi(argv[2]) : 5;

  // Vertex layout: 0 = source, 1..F factories, F+1..F+W warehouses, last =
  // sink.
  const grb::IndexType n = 2 + factories + warehouses;
  const grb::IndexType source = 0;
  const grb::IndexType sink = n - 1;

  using Tag = grb::Sequential;
  grb::Matrix<double, Tag> cap(n, n);
  std::mt19937_64 rng(2016);
  std::uniform_real_distribution<double> c(5.0, 25.0);

  grb::IndexArrayType rows, cols;
  std::vector<double> vals;
  double supply = 0.0;
  for (grb::IndexType f = 0; f < factories; ++f) {
    const double cf = c(rng);
    supply += cf;
    rows.push_back(source);
    cols.push_back(1 + f);
    vals.push_back(cf);
    for (grb::IndexType w = 0; w < warehouses; ++w) {
      if ((f + w) % 2 == 0) continue;  // sparse shipping lanes
      rows.push_back(1 + f);
      cols.push_back(1 + factories + w);
      vals.push_back(c(rng));
    }
  }
  double demand = 0.0;
  for (grb::IndexType w = 0; w < warehouses; ++w) {
    const double cw = c(rng);
    demand += cw;
    rows.push_back(1 + factories + w);
    cols.push_back(sink);
    vals.push_back(cw);
  }
  cap.build(rows, cols, vals);

  std::printf("supply chain: %llu factories, %llu warehouses, %llu lanes\n",
              static_cast<unsigned long long>(factories),
              static_cast<unsigned long long>(warehouses),
              static_cast<unsigned long long>(cap.nvals()));
  std::printf("total factory capacity: %.1f, warehouse demand: %.1f\n",
              supply, demand);

  const double throughput = algorithms::maxflow(cap, source, sink);
  std::printf("maximum achievable throughput: %.1f\n", throughput);
  std::printf("bottleneck utilisation: %.1f%% of supply, %.1f%% of demand\n",
              100.0 * throughput / supply, 100.0 * throughput / demand);

  // Sanity: throughput can never exceed either terminal cut.
  if (throughput > supply + 1e-9 || throughput > demand + 1e-9) {
    std::printf("ERROR: flow exceeds a trivial cut!\n");
    return 1;
  }
  return 0;
}
