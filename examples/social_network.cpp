/// Social-network analytics on an R-MAT graph (the power-law degree
/// distribution of real social graphs): influence ranking with PageRank,
/// community cohesion via triangles and clustering coefficients, and a
/// maximal independent set as a "non-overlapping seed users" selection.
///
///   ./social_network [scale] [edgefactor]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "algorithms/algorithms.hpp"
#include "gbtl/gbtl.hpp"
#include "graph/generators.hpp"
#include "graph/graph_matrix.hpp"

int main(int argc, char** argv) {
  const unsigned scale = argc > 1 ? std::atoi(argv[1]) : 9;
  const gbtl_graph::Index edgefactor = argc > 2 ? std::atoi(argv[2]) : 8;

  // "Friendship" graph: symmetric, no self-follows, duplicates collapsed.
  auto g = gbtl_graph::symmetrize(gbtl_graph::remove_self_loops(
      gbtl_graph::rmat(scale, edgefactor, /*seed=*/20160522)));
  using Tag = grb::Sequential;
  auto A = gbtl_graph::to_matrix<double, Tag>(g);
  const auto n = A.nrows();

  std::printf("social graph: %llu users, %llu friendships\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(A.nvals() / 2));

  // --- Influence: PageRank. -----------------------------------------------
  grb::Vector<double, Tag> rank(n);
  const auto pr = algorithms::pagerank(A, rank);
  std::printf("pagerank converged in %llu iterations (delta %.2e)\n",
              static_cast<unsigned long long>(pr.iterations),
              pr.final_delta);

  grb::IndexArrayType ids;
  std::vector<double> scores;
  rank.extractTuples(ids, scores);
  std::vector<std::size_t> order(ids.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });
  std::printf("top-5 influencers:\n");
  auto degrees = algorithms::out_degree(A);
  for (std::size_t k = 0; k < 5 && k < order.size(); ++k) {
    const auto v = ids[order[k]];
    std::printf("  user %-6llu rank %.5f  friends %llu\n",
                static_cast<unsigned long long>(v), scores[order[k]],
                static_cast<unsigned long long>(
                    degrees.hasElement(v) ? degrees.extractElement(v) : 0));
  }

  // --- Cohesion: triangles + clustering. -----------------------------------
  const auto triangles = algorithms::triangle_count_masked(A);
  const double gcc = algorithms::global_clustering_coefficient(A);
  std::printf("triangles: %llu, global clustering coefficient: %.4f\n",
              static_cast<unsigned long long>(triangles), gcc);

  // --- Seed users: maximal independent set. --------------------------------
  grb::Vector<bool, Tag> seeds(n);
  algorithms::mis(A, seeds, /*seed=*/7);
  std::printf("selected %llu mutually non-adjacent seed users\n",
              static_cast<unsigned long long>(seeds.nvals()));
  std::printf("seed set is maximal+independent: %s\n",
              algorithms::is_maximal_independent_set(A, seeds) ? "yes"
                                                               : "NO (bug)");
  return 0;
}
