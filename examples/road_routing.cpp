/// Road-network routing on a weighted grid (the road-network stand-in):
/// single-source shortest paths on the GPU-simulated backend, route
/// reconstruction, and a minimum spanning tree as a "cheapest road
/// maintenance network".
///
///   ./road_routing [rows] [cols]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "algorithms/algorithms.hpp"
#include "gbtl/gbtl.hpp"
#include "graph/generators.hpp"
#include "graph/graph_matrix.hpp"

int main(int argc, char** argv) {
  const gbtl_graph::Index rows = argc > 1 ? std::atoi(argv[1]) : 12;
  const gbtl_graph::Index cols = argc > 2 ? std::atoi(argv[2]) : 12;

  // Grid roads with random travel times in [1, 10) minutes.
  auto g = gbtl_graph::with_random_weights(gbtl_graph::grid2d(rows, cols),
                                           1.0, 10.0, /*seed=*/99);
  using Tag = grb::GpuSim;  // run the whole pipeline on the GPU backend
  auto A = gbtl_graph::to_matrix<double, Tag>(g);
  const auto n = A.nrows();

  const grb::IndexType depot = 0;
  const grb::IndexType dest = n - 1;  // opposite corner

  std::printf("road grid: %llux%llu (%llu junctions, %llu road segments)\n",
              static_cast<unsigned long long>(rows),
              static_cast<unsigned long long>(cols),
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(A.nvals() / 2));

  // --- Travel times from the depot. ---------------------------------------
  grb::Vector<double, Tag> eta(n);
  const auto relaxations = algorithms::sssp(A, depot, eta);
  std::printf("sssp converged after %llu relaxation rounds\n",
              static_cast<unsigned long long>(relaxations));
  std::printf("fastest depot -> corner time: %.2f minutes\n",
              eta.extractElement(dest));

  // --- Route reconstruction: walk backwards along tight edges. ------------
  std::vector<grb::IndexType> route{dest};
  grb::IndexType cur = dest;
  while (cur != depot) {
    const double d_cur = eta.extractElement(cur);
    // Find a predecessor p with eta[p] + w(p, cur) == eta[cur].
    grb::IndexType next = cur;
    for (grb::IndexType p = 0; p < n; ++p) {
      if (!A.hasElement(p, cur) || !eta.hasElement(p)) continue;
      const double via = eta.extractElement(p) + A.extractElement(p, cur);
      if (via <= d_cur + 1e-9) {
        next = p;
        break;
      }
    }
    if (next == cur) break;  // should not happen on a connected grid
    route.push_back(next);
    cur = next;
  }
  std::printf("route has %zu junctions: ", route.size());
  for (auto it = route.rbegin(); it != route.rend(); ++it)
    std::printf("%llu ", static_cast<unsigned long long>(*it));
  std::printf("\n");

  // --- Cheapest maintenance network: MST. ----------------------------------
  grb::Vector<grb::IndexType, Tag> parents(n);
  const auto tree = algorithms::mst(A, parents);
  std::printf("maintenance network: %llu segments, total cost %.2f\n",
              static_cast<unsigned long long>(tree.edges), tree.weight);
  return 0;
}
