/// Community structure and link prediction: k-core/k-truss dense-subgraph
/// extraction, frequency-slot coloring, personalized PageRank for "who is
/// near this user", and Jaccard link prediction — the extension algorithms
/// on one realistic workload.
///
///   ./community_analysis [scale]

#include <cstdio>
#include <cstdlib>

#include "algorithms/algorithms.hpp"
#include "gbtl/gbtl.hpp"
#include "graph/generators.hpp"
#include "graph/graph_matrix.hpp"

int main(int argc, char** argv) {
  const unsigned scale = argc > 1 ? std::atoi(argv[1]) : 8;
  auto g = gbtl_graph::symmetrize(gbtl_graph::remove_self_loops(
      gbtl_graph::rmat(scale, 8, /*seed=*/424242)));
  using Tag = grb::Sequential;
  auto A = gbtl_graph::to_matrix<double, Tag>(g);
  const auto n = A.nrows();

  std::printf("network: %llu members, %llu ties\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(A.nvals() / 2));

  // --- Dense cores: k-core decomposition. ---------------------------------
  grb::Vector<grb::IndexType, Tag> core(n);
  const auto degeneracy = algorithms::kcore_decomposition(A, core);
  std::printf("degeneracy (max core): %llu\n",
              static_cast<unsigned long long>(degeneracy));
  for (grb::IndexType k = degeneracy; k + 2 >= degeneracy && k > 0; --k) {
    auto members = algorithms::kcore_vertices(A, k);
    std::printf("  %llu-core has %llu members\n",
                static_cast<unsigned long long>(k),
                static_cast<unsigned long long>(members.nvals()));
  }

  // --- Cohesive ties: k-truss. ---------------------------------------------
  grb::Matrix<grb::IndexType, Tag> truss(n, n);
  const auto t4 = algorithms::ktruss(A, 4, truss);
  std::printf("4-truss: %llu ties survive (%llu rounds of peeling)\n",
              static_cast<unsigned long long>(t4.edges / 2),
              static_cast<unsigned long long>(t4.rounds));

  // --- Scheduling: proper coloring (e.g. frequency/timeslot assignment). ---
  grb::Vector<grb::IndexType, Tag> colors(n);
  const auto col = algorithms::greedy_coloring(A, colors, /*seed=*/3);
  std::printf("coloring: %llu colors in %llu rounds (proper: %s)\n",
              static_cast<unsigned long long>(col.colors_used),
              static_cast<unsigned long long>(col.rounds),
              algorithms::is_proper_coloring(A, colors) ? "yes" : "NO");

  // --- Locality: personalized PageRank around the busiest member. ----------
  auto deg = algorithms::out_degree(A);
  grb::IndexType hub = 0;
  grb::IndexType best = 0;
  for (grb::IndexType v = 0; v < n; ++v) {
    const auto d = deg.hasElement(v) ? deg.extractElement(v) : 0;
    if (d > best) {
      best = d;
      hub = v;
    }
  }
  grb::Vector<double, Tag> local_rank(n);
  algorithms::personalized_pagerank(A, {hub}, local_rank);
  std::printf("personalized pagerank around member %llu (degree %llu): "
              "self-mass %.4f\n",
              static_cast<unsigned long long>(hub),
              static_cast<unsigned long long>(best),
              local_rank.extractElement(hub));

  // --- Link prediction: top Jaccard candidates. -----------------------------
  const auto predictions = algorithms::top_link_predictions(A, 5);
  std::printf("top-%zu predicted ties:\n", predictions.size());
  for (const auto& [u, v, score] : predictions)
    std::printf("  %llu -- %llu   jaccard %.3f\n",
                static_cast<unsigned long long>(u),
                static_cast<unsigned long long>(v), score);

  std::printf("bipartite: %s\n",
              algorithms::is_bipartite(A) ? "yes" : "no (has odd cycles)");
  return 0;
}
