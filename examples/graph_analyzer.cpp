/// graph_analyzer — command-line driver for the whole library: load a
/// Matrix Market graph (or generate one), pick a backend, run a named
/// analysis, and report results plus (for the GPU backend) the simulated
/// device-time breakdown. The "downstream user" entry point.
///
/// Usage:
///   graph_analyzer <graph> <analysis> [--backend=seq|gpu] [--source=N]
///
///   <graph>     path to a MatrixMarket .mtx file, or one of
///               rmat:<scale>:<edgefactor> | er:<n>:<m> | grid:<r>:<c>
///   <analysis>  bfs | sssp | pagerank | triangles | components | mis |
///               kcore | stats
///
/// Examples:
///   graph_analyzer rmat:10:16 bfs --backend=gpu --source=0
///   graph_analyzer road.mtx sssp --source=17

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "algorithms/algorithms.hpp"
#include "gbtl/gbtl.hpp"
#include "gpu_sim/context.hpp"
#include "graph/generators.hpp"
#include "graph/graph_matrix.hpp"
#include "graph/mmio.hpp"

namespace {

gbtl_graph::EdgeList load_graph(const std::string& spec) {
  if (spec.rfind("rmat:", 0) == 0) {
    unsigned scale = 10;
    unsigned long long ef = 16;
    std::sscanf(spec.c_str(), "rmat:%u:%llu", &scale, &ef);
    return gbtl_graph::deduplicate(gbtl_graph::remove_self_loops(
        gbtl_graph::rmat(scale, static_cast<gbtl_graph::Index>(ef),
                         20160522)));
  }
  if (spec.rfind("er:", 0) == 0) {
    unsigned long long n = 1024, m = 8192;
    std::sscanf(spec.c_str(), "er:%llu:%llu", &n, &m);
    return gbtl_graph::deduplicate(gbtl_graph::remove_self_loops(
        gbtl_graph::erdos_renyi(n, m, 20160522)));
  }
  if (spec.rfind("grid:", 0) == 0) {
    unsigned long long r = 16, c = 16;
    std::sscanf(spec.c_str(), "grid:%llu:%llu", &r, &c);
    return gbtl_graph::grid2d(r, c);
  }
  return gbtl_graph::read_matrix_market_file(spec);
}

template <typename Tag>
int run(const gbtl_graph::EdgeList& g, const std::string& analysis,
        grb::IndexType source, const char* backend_name) {
  const auto t0 = std::chrono::steady_clock::now();
  auto A = gbtl_graph::to_matrix<double, Tag>(g);
  std::printf("[%s] graph: %llu vertices, %llu edges\n", backend_name,
              static_cast<unsigned long long>(A.nrows()),
              static_cast<unsigned long long>(A.nvals()));

  if (analysis == "bfs") {
    grb::Vector<grb::IndexType, Tag> levels(A.nrows());
    algorithms::bfs_level(A, source, levels);
    grb::IndexType max_level = 0;
    grb::reduce(max_level, grb::NoAccumulate{},
                grb::MaxMonoid<grb::IndexType>{}, levels);
    std::printf("bfs from %llu: reached %llu vertices, eccentricity %llu\n",
                static_cast<unsigned long long>(source),
                static_cast<unsigned long long>(levels.nvals()),
                static_cast<unsigned long long>(max_level - 1));
  } else if (analysis == "sssp") {
    auto W = A;  // unweighted files get weight 1 per edge
    grb::Vector<double, Tag> dist(W.nrows());
    const auto rounds = algorithms::sssp(W, source, dist);
    double max_dist = 0;
    grb::reduce(max_dist, grb::NoAccumulate{}, grb::MaxMonoid<double>{},
                dist);
    std::printf("sssp from %llu: %llu reachable, %llu rounds, "
                "farthest %.3f\n",
                static_cast<unsigned long long>(source),
                static_cast<unsigned long long>(dist.nvals()),
                static_cast<unsigned long long>(rounds), max_dist);
  } else if (analysis == "pagerank") {
    grb::Vector<double, Tag> rank(A.nrows());
    const auto r = algorithms::pagerank(A, rank);
    grb::IndexType top = 0;
    double best = -1;
    for (grb::IndexType v = 0; v < A.nrows(); ++v) {
      const double s = rank.hasElement(v) ? rank.extractElement(v) : 0;
      if (s > best) best = s, top = v;
    }
    std::printf("pagerank: %llu iterations, top vertex %llu (%.5f)\n",
                static_cast<unsigned long long>(r.iterations),
                static_cast<unsigned long long>(top), best);
  } else if (analysis == "triangles") {
    auto sym = gbtl_graph::to_matrix<double, Tag>(gbtl_graph::symmetrize(g));
    std::printf("triangles: %llu\n",
                static_cast<unsigned long long>(
                    algorithms::triangle_count_masked(sym)));
  } else if (analysis == "components") {
    auto sym = gbtl_graph::to_matrix<double, Tag>(gbtl_graph::symmetrize(g));
    std::printf("connected components: %llu\n",
                static_cast<unsigned long long>(
                    algorithms::component_count(sym)));
  } else if (analysis == "mis") {
    auto sym = gbtl_graph::to_matrix<double, Tag>(gbtl_graph::symmetrize(
        gbtl_graph::remove_self_loops(g)));
    grb::Vector<bool, Tag> iset(sym.nrows());
    algorithms::mis(sym, iset);
    std::printf("maximal independent set: %llu vertices (valid: %s)\n",
                static_cast<unsigned long long>(iset.nvals()),
                algorithms::is_maximal_independent_set(sym, iset) ? "yes"
                                                                  : "NO");
  } else if (analysis == "kcore") {
    auto sym = gbtl_graph::to_matrix<double, Tag>(gbtl_graph::symmetrize(
        gbtl_graph::remove_self_loops(g)));
    grb::Vector<grb::IndexType, Tag> core(sym.nrows());
    std::printf("degeneracy: %llu\n",
                static_cast<unsigned long long>(
                    algorithms::kcore_decomposition(sym, core)));
  } else if (analysis == "stats") {
    auto outd = algorithms::out_degree(A);
    grb::IndexType max_deg = 0;
    grb::reduce(max_deg, grb::NoAccumulate{},
                grb::MaxMonoid<grb::IndexType>{}, outd);
    std::printf("density: %.6f, max out-degree: %llu\n",
                algorithms::graph_density(A),
                static_cast<unsigned long long>(max_deg));
  } else {
    std::fprintf(stderr, "unknown analysis '%s'\n", analysis.c_str());
    return 2;
  }

  const auto wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("host wall time: %.3f ms\n", wall * 1e3);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <graph.mtx|rmat:s:e|er:n:m|grid:r:c> "
                 "<bfs|sssp|pagerank|triangles|components|mis|kcore|stats> "
                 "[--backend=seq|gpu] [--source=N]\n",
                 argv[0]);
    return 2;
  }
  std::string backend = "seq";
  grb::IndexType source = 0;
  for (int i = 3; i < argc; ++i) {
    if (std::strncmp(argv[i], "--backend=", 10) == 0) backend = argv[i] + 10;
    if (std::strncmp(argv[i], "--source=", 9) == 0)
      source = std::strtoull(argv[i] + 9, nullptr, 10);
  }

  try {
    const auto g = load_graph(argv[1]);
    if (backend == "gpu") {
      // Private context for the run (ScopedDevice): counters start at zero
      // without the reset_stats() dance.
      gpu_sim::Context ctx;
      gpu_sim::ScopedDevice bind(ctx);
      const int rc = run<grb::GpuSim>(g, argv[2], source, "gpu-sim");
      const auto s = ctx.stats();
      std::printf("simulated device: %.3f ms kernels (%llu launches) + "
                  "%.3f ms transfers (%llu MB moved)\n",
                  s.simulated_kernel_time_s * 1e3,
                  static_cast<unsigned long long>(s.kernel_launches),
                  s.simulated_transfer_time_s * 1e3,
                  static_cast<unsigned long long>(
                      (s.h2d_bytes + s.d2h_bytes) >> 20));
      return rc;
    }
    return run<grb::Sequential>(g, argv[2], source, "sequential");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
